package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"mdcc/internal/transport"
)

// Dispatch-path microbenchmarks: run with
//
//	go test ./internal/core/ -bench 'Wire' -benchmem
//
// CI gates the alloc columns via TestWireEncodeAllocFree below; the
// benchmarks are the before/after evidence for the codec swap.

func benchEncodeBinary(b *testing.B, msg transport.Message) {
	b.Helper()
	e := transport.Envelope{From: "dc1/store0", To: "dc2/app0", Msg: msg}
	buf, err := transport.AppendEnvelope(nil, e)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = transport.AppendEnvelope(buf[:0], e)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchEncodeGob(b *testing.B, msg transport.Message) {
	b.Helper()
	e := transport.Envelope{From: "dc1/store0", To: "dc2/app0", Msg: msg}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf) // persistent stream, as tcp.go uses
	if err := enc.Encode(&e); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(&e); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeBinary(b *testing.B, msg transport.Message) {
	b.Helper()
	buf, err := transport.AppendEnvelope(nil, transport.Envelope{From: "dc1/store0", To: "dc2/app0", Msg: msg})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transport.DecodeEnvelope(transport.NewWireReader(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodePhase2aBinary(b *testing.B) {
	benchEncodeBinary(b, wireSamples()["MsgPhase2a"])
}
func BenchmarkWireEncodePhase2aGob(b *testing.B) { benchEncodeGob(b, wireSamples()["MsgPhase2a"]) }
func BenchmarkWireDecodePhase2aBinary(b *testing.B) {
	benchDecodeBinary(b, wireSamples()["MsgPhase2a"])
}

func BenchmarkWireEncodeVoteBatchBinary(b *testing.B) {
	benchEncodeBinary(b, wireSamples()["MsgVoteBatch"])
}
func BenchmarkWireEncodeVoteBatchGob(b *testing.B) { benchEncodeGob(b, wireSamples()["MsgVoteBatch"]) }
func BenchmarkWireDecodeVoteBatchBinary(b *testing.B) {
	benchDecodeBinary(b, wireSamples()["MsgVoteBatch"])
}

func BenchmarkWireEncodeFeedBinary(b *testing.B) {
	benchEncodeBinary(b, wireSamples()["MsgVisibilityFeed"])
}
func BenchmarkWireEncodeFeedGob(b *testing.B) { benchEncodeGob(b, wireSamples()["MsgVisibilityFeed"]) }

// TestWireEncodeAllocFree is the allocation gate: encoding a hot
// message into a reused frame buffer must not allocate. This is what
// keeps the TCP write loop's steady state allocation-free, and it
// runs under plain `go test` so CI catches regressions without
// benchmark plumbing.
func TestWireEncodeAllocFree(t *testing.T) {
	samples := wireSamples()
	for _, name := range []string{"MsgPhase2a", "MsgPhase2b_ok", "MsgVote", "MsgVoteBatch", "MsgVisibilityFeed", "MsgProposeBatch"} {
		e := transport.Envelope{From: "dc1/store0", To: "dc2/app0", Msg: samples[name]}
		buf, err := transport.AppendEnvelope(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = transport.AppendEnvelope(buf[:0], e)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s: encode allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

// TestWireDecodeSteadyStateAllocs is the decode-side allocation gate:
// with the intern table warm, decoding a hot message allocates only
// the message's own structure — interface boxing, slices, maps, and
// transaction ids (the deliberate non-interned exception). Record
// keys, node ids, ballot leaders, attribute and lane names decode
// through transport's intern table and must NOT cost one string copy
// per occurrence; a regression that reintroduces per-string copies
// blows well past these pinned budgets.
func TestWireDecodeSteadyStateAllocs(t *testing.T) {
	samples := wireSamples()
	budgets := map[string]float64{
		"MsgRead":           2,
		"MsgReadReply":      6,
		"MsgVote":           4,
		"MsgVoteBatch":      6,
		"MsgLearned":        4,
		"MsgPhase2a":        28,
		"MsgPhase2b_ok":     2,
		"MsgProposeBatch":   13,
		"MsgVisibilityFeed": 7,
	}
	for name, budget := range budgets {
		buf, err := transport.AppendEnvelope(nil, transport.Envelope{From: "dc1/store0", To: "dc2/app0", Msg: samples[name]})
		if err != nil {
			t.Fatal(err)
		}
		// Warm pass: admit this sample's strings to the intern table.
		if _, err := transport.DecodeEnvelope(transport.NewWireReader(buf)); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := transport.DecodeEnvelope(transport.NewWireReader(buf)); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("%s: decode allocates %.1f objects/op, budget %.0f", name, allocs, budget)
		}
		// Pooled-frame pass: DecodeFrame — the TCP read loop's actual
		// entry point — recycles the reader struct itself, so it must
		// beat the fresh-reader budget by at least that one allocation.
		pooled := testing.AllocsPerRun(200, func() {
			if _, err := transport.DecodeFrame(buf); err != nil {
				t.Fatal(err)
			}
		})
		if pooled > budget-1 {
			t.Errorf("%s: pooled DecodeFrame allocates %.1f objects/op, budget %.0f (reader must come from the pool)", name, pooled, budget-1)
		}
	}
}
