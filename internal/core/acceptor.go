package core

import (
	"math/rand"
	"strings"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
	"mdcc/internal/wal"
)

// StorageNode is one replica: the Paxos acceptor for every record it
// stores, plus the leader role for records mastered in its data
// center (masters are placed on storage nodes, §3.1.1). All methods
// run in transport handler context.
type StorageNode struct {
	id    transport.NodeID
	dc    topology.DC
	net   transport.Network
	cl    *topology.Cluster
	cfg   Config
	q     paxos.Quorum
	store *kv.Store
	recs  map[record.Key]*recState
	ldrs  map[record.Key]*leaderRec
	tr    *trace.Ring // flight-recorder ring, nil when tracing is off

	reqSeq     uint64
	recoveries map[uint64]*txRecovery
	syncCursor record.Key
	nSynced    int64
	oplog      *wal.Log // non-nil for durable nodes (see restart.go)
	halted     bool

	// Durable-storage engine state (restart.go / checkpoint.go):
	// durable is non-nil for nodes built via NewDurableStorageNode;
	// degraded latches the first durability failure (the node halts and
	// never acks unsynced writes — see degrade).
	durable             *DurableState
	degraded            error
	nDurabilityFailures int64
	nCheckpoints        int64

	// Shard-move bootstrap (see AdoptShard): the in-flight directed
	// pull, and the request ids it has issued so a late or duplicated
	// pull reply can never leak into the background sync path and
	// clobber its cursor.
	pull     *shardPull
	pullReqs map[uint64]bool

	// Outbound vote batching: votes produced while dispatching one
	// inbound envelope are buffered per destination coordinator and
	// flushed as one transport.Batch when the dispatch finishes (see
	// handle / sendVote). Zero added latency: nothing is ever held
	// across dispatches.
	dispatchDepth int
	voteBuf       map[transport.NodeID][]transport.Envelope
	voteOrder     []transport.NodeID

	// Committed-visibility feed (see feed.go): per-subscriber stream
	// state and the keys dirtied by the dispatch in progress, flushed
	// alongside the vote buffers.
	feedSubs           map[transport.NodeID]*feedSub
	feedSubOrder       []transport.NodeID
	feedDirty          []record.Key
	feedDirtySet       map[record.Key]bool
	feedKeepAliveArmed bool
	feedFlushArmed     bool
	feedLastFlush      time.Time
	feedBoot           uint64 // publisher incarnation id (see MsgVisibilityFeed.Boot)

	// Counters (read via Metrics).
	nVotesAccept, nVotesReject int64
	nForwarded                 int64
	nExecuted, nDiscarded      int64
	nPhase1, nPhase2           int64
	nEnableFast                int64
	nDemarcationRejects        int64
	nSweeps                    int64
	nBatchEnvelopes            int64
	nBatchItems                int64
	nVoteBatchEnvelopes        int64
	nVoteBatchItems            int64
	nFeedMsgs                  int64
	nFeedItems                 int64
	nGrafted                   int64
	nAdoptRefused              int64
	nDecidedReleased           int64
	nMixedKindRejects          int64
	nShardMoves                int64
	nMovedKeys                 int64
	nWrongGroupRefusals        int64

	// group is this node's replica-group index (its per-DC storage
	// index), -1 when the node is not in the cluster catalogue. The
	// ring fence compares it against the published shard ring's owner
	// for a key (see owns).
	group int
}

// recState is the acceptor's per-record Paxos state: the promised and
// accepted ballots, the unresolved votes of the current ballot (the
// cstruct), the decided-option log (the idempotence/merge cache), and
// the record's exact lineage summary.
type recState struct {
	promised paxos.Ballot
	accepted paxos.Ballot
	votes    []VotedOption
	decided  *decidedLog
	// summary is the record's exact applied-option summary: the
	// settled set whose effects the committed value contains (or, for
	// physical options, contains-or-supersedes). It is what makes
	// "does this base already contain apply X?" answerable forever —
	// see lineage.go.
	summary LineageSummary
	// peerLineage is the last summary learned from each peer replica
	// (anti-entropy replies, Phase1b, Phase2a bases). Content release
	// from the decided log is gated on every peer containing the entry
	// (see decidedLog.compact); summaries are monotone per replica, so
	// a stale observation is only ever conservative.
	peerLineage map[transport.NodeID]LineageSummary
	// kind is the record's established update class (the kind-disjoint
	// rule, DESIGN.md §5): locked by the first non-creating update;
	// record-creating inserts are class-neutral. 0 = not yet locked.
	kind record.UpdateKind
	// votedAt remembers when each unresolved vote was cast, for the
	// dangling-transaction sweep.
	votedAt map[OptionID]time.Time
	// p2aSeq is the highest proposal sequence adopted in the accepted
	// ballot, so duplicated or reordered Phase2a messages cannot
	// regress the cstruct to an older snapshot.
	p2aSeq uint64
}

// NewStorageNode builds a storage node bound to id and registers its
// handler on the network.
func NewStorageNode(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, cfg Config, store *kv.Store) *StorageNode {
	n := &StorageNode{
		id:           id,
		dc:           dc,
		net:          net,
		cl:           cl,
		cfg:          cfg,
		q:            paxos.NewQuorum(cl.ReplicationFactor()),
		tr:           cfg.Tracer.Ring(string(id), int(dc)),
		store:        store,
		recs:         make(map[record.Key]*recState),
		ldrs:         make(map[record.Key]*leaderRec),
		recoveries:   make(map[uint64]*txRecovery),
		voteBuf:      make(map[transport.NodeID][]transport.Envelope),
		feedSubs:     make(map[transport.NodeID]*feedSub),
		feedDirtySet: make(map[record.Key]bool),
		group:        -1,
	}
	for _, sn := range cl.Storage {
		if sn.ID == id {
			n.group = sn.Index
			break
		}
	}
	// The feed boot id distinguishes this incarnation's stream from a
	// dead predecessor's: construction time is strictly later than any
	// prior incarnation's (restarts happen after crashes, on the real
	// clock and the virtual one), so the id changes across restarts
	// without durable state. +1 keeps it nonzero even at the simulated
	// clock's epoch (consumers use 0 as "no stream consumed yet").
	n.feedBoot = uint64(net.Now().UnixNano()) + 1
	net.Register(id, n.handle)
	if cfg.PendingTimeout > 0 {
		n.scheduleSweep()
	}
	if cfg.SyncInterval > 0 {
		n.scheduleAntiEntropy(rand.New(rand.NewSource(int64(fnvID(string(id))))))
	}
	return n
}

// ID returns the node's transport identity.
func (n *StorageNode) ID() transport.NodeID { return n.id }

// owns reports whether this node's replica group owns key under the
// cluster's currently-published shard ring. After a live shard move
// publishes, the old group's nodes must stop acting as acceptors and
// leaders for re-homed keys — a route minted before the move (a stale
// leader hint, a message in flight across the publish) would otherwise
// fork decision authority between the old group's copy of the record
// and the new one. Nodes outside the catalogue (group < 0) are
// unfenced.
func (n *StorageNode) owns(key record.Key) bool {
	return n.group < 0 || n.cl.Shard(key) == n.group
}

// Store exposes the committed-state store (reads, tests, tools).
func (n *StorageNode) Store() *kv.Store { return n.store }

// handle dispatches every message addressed to this node. While a
// top-level dispatch runs, outbound votes are buffered per destination
// and flushed when it returns (dispatch recurses for Batch items, so
// the votes of a whole gateway-coalesced envelope share wire messages).
func (n *StorageNode) handle(env transport.Envelope) {
	if n.halted {
		return
	}
	n.dispatchDepth++
	n.dispatch(env)
	n.dispatchDepth--
	if n.dispatchDepth == 0 {
		n.flushVotes()
		n.flushFeeds()
	}
}

func (n *StorageNode) dispatch(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case transport.Batch:
		// A gateway-coalesced envelope: unpack and dispatch each item
		// with its original sender (cross-transaction batching; the
		// items preserve send order).
		n.nBatchEnvelopes++
		n.nBatchItems += int64(len(m.Items))
		for _, item := range m.Items {
			n.cfg.Tracer.ObserveRecv(item.TraceClk)
			n.handle(item)
		}
	case MsgRead:
		n.onRead(env.From, m)
	case MsgProposeFast:
		n.onProposeFast(m)
	case MsgProposeBatch:
		n.onProposeBatch(m)
	case MsgVisibility:
		n.onVisibility(m)
	case MsgVisibilityBatch:
		for _, item := range m.Items {
			n.onVisibility(item)
		}
	case MsgPhase1a:
		n.onPhase1a(env.From, m)
	case MsgPhase2a:
		n.onPhase2a(env.From, m)
	case MsgEnableFast:
		n.onEnableFast(m)
	// Leader-role messages.
	case MsgProposeLeader:
		n.leaderPropose(m.Opt, false)
	case MsgStartRecovery:
		n.onStartRecovery(m)
	case MsgPhase1b:
		n.onPhase1b(env.From, m)
	case MsgPhase2b:
		n.onPhase2b(env.From, m)
	// Dangling-transaction recovery.
	case MsgRecoverOpt:
		n.onRecoverOpt(env.From, m)
	case MsgOptDecided:
		n.onOptDecided(m)
	// Committed-visibility feed (gateway read tier).
	case MsgVisibilitySub:
		n.onVisibilitySub(env.From, m)
	// Anti-entropy catch-up.
	case MsgSyncReq:
		n.onSyncReq(env.From, m)
	case MsgSyncReply:
		n.onSyncReply(env.From, m)
	}
}

// rs returns (creating lazily) the record's acceptor state. Records
// start in the implicit fast ballot, except in Multi mode where every
// record starts owned by its stable master at classic ballot 1
// (the Multi-Paxos mastership reservation over all instances).
func (n *StorageNode) rs(key record.Key) *recState {
	r, ok := n.recs[key]
	if !ok {
		r = &recState{
			promised: n.initialBallot(key),
			decided:  newDecidedLog(0, n.cfg.DecidedRetention),
			votedAt:  make(map[OptionID]time.Time),
		}
		r.accepted = r.promised
		n.recs[key] = r
	}
	return r
}

// notePeerLineage records a peer replica's summary for ack-gated
// content release (summaries are monotone per replica incarnation, so
// later observations only widen the acked set; a non-durable restart
// resets a peer's summary, but then every base that peer ever sends
// is one it adopted from the quorum, which contains everything the
// acked entries cover — release stays safe).
func (n *StorageNode) notePeerLineage(r *recState, from transport.NodeID, s LineageSummary) {
	if from == n.id {
		return
	}
	if r.peerLineage == nil {
		r.peerLineage = make(map[transport.NodeID]LineageSummary, 4)
	}
	prev := r.peerLineage[from]
	prev.Union(s)
	r.peerLineage[from] = prev
}

// compactDecided releases decided-log contents that are provably
// redundant: aged past the retention cache horizon AND contained in
// every peer replica's last-known summary (so no future merge can
// need them; the summary itself keeps their settled knowledge
// forever). force skips the doubling amortization (the periodic
// sweep forces over-limit logs so entries that became releasable
// since the last settle still shrink the log).
func (n *StorageNode) compactDecided(key record.Key, r *recState, force bool) {
	if force {
		if len(r.decided.order) <= r.decided.limit {
			return
		}
	} else if !r.decided.wantsCompact() {
		return
	}
	peers := n.cl.Replicas(key)
	n.nDecidedReleased += int64(r.decided.compact(n.net.Now(), func(e decidedEntry) bool {
		for _, p := range peers {
			if p == n.id {
				continue
			}
			pl, ok := r.peerLineage[p]
			if !ok || !pl.Contains(e.lane, e.keySeq) {
				return false
			}
		}
		return true
	}))
}

// settleOption records one final decision: decided-log entry, lineage
// summary, durable decision log, and the record's kind class. Returns
// whether the decision was new.
func (n *StorageNode) settleOption(key record.Key, r *recState, id OptionID, d Decision, opt Option, hasOpt bool) bool {
	if !r.decided.record(id, d, opt, hasOpt, n.net.Now()) {
		return false
	}
	r.noteSettled(id, d, opt, hasOpt)
	n.logDecision(id, d, opt, hasOpt)
	n.compactDecided(key, r, false)
	return true
}

// noteSettled folds one settled decision into the record's summary
// and class lock (shared by live settles and WAL replay).
func (r *recState) noteSettled(id OptionID, d Decision, opt Option, hasOpt bool) {
	if hasOpt && opt.KeySeq > 0 {
		applied := d == DecAccept && opt.Update.Kind == record.KindCommutative
		r.summary.Add(laneOf(id.Tx), opt.KeySeq, d != DecAccept, applied)
		if d == DecAccept && opt.Update.Kind == record.KindPhysical && opt.Update.ReadVersion > 0 {
			r.summary.Physical = true
		}
	}
	if hasOpt && d == DecAccept {
		r.noteKind(opt.Update)
	}
}

// noteKind locks the record's update class on the first non-creating
// accepted update (inserts — ReadVersion 0 — are class-neutral:
// account/stock records are created physically and then live
// commutatively, per the paper's own workloads).
func (r *recState) noteKind(up record.Update) {
	if r.kind != 0 {
		return
	}
	switch up.Kind {
	case record.KindCommutative:
		r.kind = record.KindCommutative
	case record.KindPhysical:
		if up.ReadVersion > 0 {
			r.kind = record.KindPhysical
		}
	}
}

// noteKindFromSummary reconstructs the class lock from the summary's
// class bits — the only kind information a replica that learned the
// key wholesale (base adoption, WAL snapshot replay) has. Deltas wins
// over Physical for pre-enforcement mixed histories: the commutative
// class is the one whose forks need merge protection.
func (r *recState) noteKindFromSummary() {
	if r.kind != 0 {
		return
	}
	switch {
	case r.summary.Deltas:
		r.kind = record.KindCommutative
	case r.summary.Physical:
		r.kind = record.KindPhysical
	}
}

func (n *StorageNode) initialBallot(key record.Key) paxos.Ballot {
	if n.cfg.Mode == ModeMulti {
		return paxos.Classic(1, string(n.leaderFor(key)))
	}
	return paxos.DefaultFast
}

// leaderFor returns the record's master: the replica of the key in
// its master data center.
func (n *StorageNode) leaderFor(key record.Key) transport.NodeID {
	return n.cl.ReplicaIn(key, n.cfg.masterDC(key))
}

// onRead serves committed state only (read committed, §4.1). The
// reply piggybacks the replica's escrow snapshot so gateways bootstrap
// exact headroom accounts from any read.
func (n *StorageNode) onRead(from transport.NodeID, m MsgRead) {
	val, ver, ok := n.store.Get(m.Key)
	exists := ok && !val.Tombstone
	if n.tr != nil {
		n.tr.Add(trace.Event{At: n.net.Now().UnixNano(), Key: string(m.Key),
			Stage: trace.StageRead, Arg: int64(ver)})
	}
	n.net.Send(n.id, from, MsgReadReply{
		ReqID: m.ReqID, Key: m.Key, Value: val, Version: ver, Exists: exists,
		Escrow: n.escrowSnap(m.Key, val, ver, from),
	})
}

// escrowSnap captures the acceptor's demarcation inputs for key: the
// committed base of every constrained attribute plus the worst-case
// pending movement of the unresolved accepted votes. Snapshots ride
// votes and read replies (the piggyback freshness channel); Version
// lets consumers order snapshots from different replicas. recipient
// is the node the snapshot is destined for: its gateway group is
// counted among the contenders even when it has no pending votes yet,
// so Contenders==1 always reads as "just you" at the consumer.
func (n *StorageNode) escrowSnap(key record.Key, val record.Value, ver record.Version, recipient transport.NodeID) EscrowSnap {
	if len(n.cfg.Constraints) == 0 {
		return EscrowSnap{}
	}
	var pending []VotedOption
	if r, ok := n.recs[key]; ok {
		pending = r.votes
	}
	snap := EscrowSnap{Valid: true, Version: ver, Contenders: contenderGroups(pending, recipient)}
	for _, con := range n.cfg.Constraints {
		down, up := pendingSums(pending, con.Attr)
		snap.Attrs = append(snap.Attrs, AttrEscrow{
			Attr: con.Attr, Base: val.Attrs[con.Attr], PendDown: down, PendUp: up,
		})
	}
	return snap
}

// GatewayGroup maps a coordinator node id to its admission-sharing
// group: pooled gateway coordinators ("gw/<dc>/cN") collapse to their
// gateway ("gw/<dc>"); private coordinators are their own group.
func GatewayGroup(id transport.NodeID) string {
	s := string(id)
	if strings.HasPrefix(s, "gw/") {
		if i := strings.LastIndexByte(s, '/'); i > 2 {
			return s[:i]
		}
	}
	return s
}

// contenderGroups counts the distinct gateway groups holding pending
// accepted commutative votes, always including the snapshot
// recipient's own group — the live-contention signal gateways use to
// adapt their headroom-share divisor. Counting the recipient is what
// makes the number actionable: without it, a snapshot taken while
// only the OTHER gateway's votes are pending would read as
// "one contender" to both sides and let each claim the full slice.
func contenderGroups(pending []VotedOption, recipient transport.NodeID) int {
	groups := map[string]bool{GatewayGroup(recipient): true}
	for _, v := range pending {
		if v.Decision != DecAccept || v.Opt.Update.Kind != record.KindCommutative {
			continue
		}
		groups[GatewayGroup(v.Opt.Coord)] = true
	}
	return len(groups)
}

// pendingSums splits the accepted pending commutative deltas on attr
// into worst-case downward and upward movement (the escrow pending
// account of §3.4.2).
func pendingSums(pending []VotedOption, attr string) (down, up int64) {
	for _, v := range pending {
		if v.Decision != DecAccept || v.Opt.Update.Kind != record.KindCommutative {
			continue
		}
		d := v.Opt.Update.Deltas[attr]
		if d < 0 {
			down += d
		} else {
			up += d
		}
	}
	return down, up
}

// sendVote routes an acceptor→coordinator vote through the outbound
// vote buffer: votes produced while one inbound envelope is being
// dispatched coalesce per destination into one transport.Batch (the
// §7 batching generalized to the vote direction). With batching
// disabled (or outside a dispatch) votes are sent directly.
func (n *StorageNode) sendVote(to transport.NodeID, msg transport.Message) {
	if n.cfg.DisableBatching || n.dispatchDepth == 0 {
		n.net.Send(n.id, to, msg)
		return
	}
	if len(n.voteBuf[to]) == 0 {
		n.voteOrder = append(n.voteOrder, to)
	}
	n.voteBuf[to] = append(n.voteBuf[to], transport.Envelope{From: n.id, To: to, Msg: msg})
}

// flushVotes drains the per-destination vote buffers accumulated by
// the dispatch that just finished (FIFO per destination, so vote
// order per (acceptor, coordinator) pair is preserved).
func (n *StorageNode) flushVotes() {
	// A node that degraded mid-dispatch already cleared these buffers;
	// the guard keeps any vote staged before the failure from leaving.
	if n.halted || len(n.voteOrder) == 0 {
		return
	}
	for _, to := range n.voteOrder {
		items := n.voteBuf[to]
		if len(items) == 1 {
			// Keep the map entry and its backing array: the common
			// one-vote dispatch then runs allocation-free (destinations
			// are bounded by the topology, so retained entries are too).
			msg := items[0].Msg
			items[0] = transport.Envelope{}
			n.voteBuf[to] = items[:0]
			n.net.Send(n.id, to, msg)
			continue
		}
		// The slice escapes into an asynchronously serialized Batch, so
		// it cannot be reused; the next vote for this peer reallocates.
		n.voteBuf[to] = nil
		n.nVoteBatchEnvelopes++
		n.nVoteBatchItems += int64(len(items))
		n.net.Send(n.id, to, transport.Batch{Items: items})
	}
	n.voteOrder = n.voteOrder[:0]
}

// onProposeFast handles a master-bypassing proposal (§3.3). In a fast
// ballot the acceptor votes immediately; in a classic window it
// forwards to the record's leader and tells the coordinator where it
// went.
func (n *StorageNode) onProposeFast(m MsgProposeFast) {
	n.sendVote(m.Opt.Coord, n.proposeVote(m.Opt))
}

// onProposeBatch votes on every option of a transaction destined for
// this node and answers with a single vote batch (§7 batching).
func (n *StorageNode) onProposeBatch(m MsgProposeBatch) {
	if len(m.Opts) == 0 {
		return
	}
	batch := MsgVoteBatch{Votes: make([]MsgVote, 0, len(m.Opts))}
	for _, opt := range m.Opts {
		batch.Votes = append(batch.Votes, n.proposeVote(opt))
	}
	n.sendVote(m.Opts[0].Coord, batch)
}

// proposeVote computes this acceptor's Phase2b answer for one
// proposed option and, for commutative options, piggybacks the
// record's escrow snapshot (taken after the vote, so it reflects it).
func (n *StorageNode) proposeVote(opt Option) MsgVote {
	vote := n.voteFor(opt)
	if opt.Update.Kind == record.KindCommutative && len(n.cfg.Constraints) > 0 {
		val, ver, _ := n.store.Get(opt.Update.Key)
		vote.Escrow = n.escrowSnap(opt.Update.Key, val, ver, opt.Coord)
	}
	return vote
}

// voteFor votes on one proposed option (voting, resending, or
// forwarding to the leader).
func (n *StorageNode) voteFor(opt Option) MsgVote {
	key := opt.Update.Key
	r := n.rs(key)
	id := opt.ID()

	// Idempotence: final decisions and existing votes are resent. The
	// lineage summary answers for settled options whose decided-log
	// entry was released — exact, forever.
	if d, ok := r.decided.get(id); ok {
		return MsgVote{OptID: id, Ballot: r.promised, Decision: d}
	}
	if opt.KeySeq > 0 {
		if d, ok := r.summary.Decision(laneOf(opt.Tx), opt.KeySeq); ok {
			return MsgVote{OptID: id, Ballot: r.promised, Decision: d}
		}
	}
	for _, v := range r.votes {
		if v.Opt.ID() == id {
			return MsgVote{OptID: id, Ballot: r.accepted, Decision: v.Decision, Reason: v.Reason}
		}
	}

	// Ring fence: settled options are answered exactly above, but this
	// group must not vote on (or forward) anything new for a key it no
	// longer owns.
	if !n.owns(key) {
		n.nWrongGroupRefusals++
		if n.tr != nil {
			n.tr.Add(trace.Event{At: n.net.Now().UnixNano(), Tx: string(opt.Tx),
				Key: string(key), Stage: trace.StageWrongShard})
		}
		return MsgVote{OptID: id, Ballot: r.promised, WrongGroup: true}
	}

	if !r.promised.Fast {
		// Classic window: the record's current leader must order this
		// option. That is whoever owns the promised ballot — after a
		// master-DC failure this is a fallback leader in a live DC,
		// not the static master.
		leader := transport.NodeID(r.promised.Leader)
		if leader == "" {
			leader = n.leaderFor(key)
		}
		n.nForwarded++
		if n.tr != nil {
			n.tr.Add(trace.Event{At: n.net.Now().UnixNano(), Tx: string(opt.Tx),
				Key: string(key), Stage: trace.StageForward})
		}
		n.net.Send(n.id, leader, MsgProposeLeader{Opt: opt})
		return MsgVote{OptID: id, Ballot: r.promised, Forwarded: true, Leader: leader}
	}

	demBefore := n.nDemarcationRejects
	dec, reason := n.evalOption(r.votes, opt, true)
	n.castVote(r, opt, dec, reason)
	if n.tr != nil {
		fl := uint8(trace.FlagFast)
		if dec == DecAccept {
			fl |= trace.FlagAccept
		} else {
			fl |= trace.FlagReject
		}
		if n.nDemarcationRejects > demBefore {
			fl |= trace.FlagDemarcation
		}
		if n.dispatchDepth > 0 && !n.cfg.DisableBatching {
			fl |= trace.FlagBatched // reply rides the vote-batch buffer
		}
		n.tr.Add(trace.Event{At: n.net.Now().UnixNano(), Tx: string(opt.Tx),
			Key: string(key), Stage: trace.StageVote, Flags: fl})
	}
	return MsgVote{OptID: id, Ballot: r.promised, Decision: dec, Reason: reason}
}

// castVote appends a vote to the record's cstruct.
func (n *StorageNode) castVote(r *recState, opt Option, dec Decision, reason RejectReason) {
	if traceOn(opt.Update.Key) {
		tracef("%v %s vote tx=%s dec=%v", n.net.Now().Unix(), n.id, opt.Tx, dec)
	}
	r.votes = append(r.votes, VotedOption{Opt: opt, Decision: dec, Reason: reason})
	r.votedAt[opt.ID()] = n.net.Now()
	if dec == DecAccept {
		n.nVotesAccept++
		r.noteKind(opt.Update)
	} else {
		n.nVotesReject++
	}
}

// evalOption is the paper's SetCompatible (algorithm 3, lines 83-99):
// an active accept/reject judgment of one option against the record's
// committed state and the outstanding options in `pending`. fast
// selects the quorum demarcation limits instead of the raw bounds for
// commutative updates. The same code runs on acceptors against their
// own votes (fast ballots) and on the leader against its cstruct
// (classic ballots) — classic decisions are consistent across
// replicas because they adopt the leader's cstruct verbatim. The
// reject reason types the kind-disjoint rule's rejections so clients
// see ErrMixedUpdateKinds instead of a silent abort.
func (n *StorageNode) evalOption(pending []VotedOption, opt Option, fast bool) (Decision, RejectReason) {
	switch opt.Update.Kind {
	case record.KindPhysical:
		return n.evalPhysical(pending, opt)
	case record.KindCommutative:
		return n.evalCommutative(pending, opt, fast)
	case record.KindReadCheck:
		// Read-set validation (§4.4): the record must still be at the
		// version the transaction read, and no outstanding write may
		// be about to change it (a pending accepted write is a
		// read-write conflict that could commit; rejecting here is
		// what makes the validation conflict-serializable rather than
		// merely version-checked). Read checks commute with each
		// other.
		_, ver, _ := n.store.Get(opt.Update.Key)
		if opt.Update.ReadVersion != ver {
			return DecReject, ReasonNone
		}
		for _, v := range pending {
			if v.Decision == DecAccept && v.Opt.Update.Kind != record.KindReadCheck {
				return DecReject, ReasonNone
			}
		}
		return DecAccept, ReasonNone
	default:
		return DecReject, ReasonNone
	}
}

func (n *StorageNode) evalPhysical(pending []VotedOption, opt Option) (Decision, RejectReason) {
	key := opt.Update.Key
	// Kind-disjoint rule (DESIGN.md §5): a non-creating physical
	// rewrite of a key with commutative history is rejected with a
	// typed reason — a physical rewrite absorbs concurrent deltas'
	// effects without carrying their lineage identities, which is
	// exactly what makes mixed-kind forks unmergeable. Inserts
	// (ReadVersion 0) create the record and are class-neutral.
	if opt.Update.ReadVersion > 0 && n.rs(key).kind == record.KindCommutative {
		n.nMixedKindRejects++
		return DecReject, ReasonMixedKinds
	}
	_, ver, _ := n.store.Get(key)
	// validRead: vread must match the current version; an insert
	// (ReadVersion 0) requires the record to be new (§3.2.1).
	if opt.Update.ReadVersion != ver {
		return DecReject, ReasonNone
	}
	// validSingle: only one outstanding option per record — this is
	// also the pessimistic deadlock-avoidance policy (§3.2.2): a
	// concurrent option is rejected, never queued, so waits-for
	// cycles cannot form. Outstanding read checks block writes too
	// (the write-read conflict side of §4.4's serializability
	// extension); they only exist when an application asks for
	// serializable transactions.
	for _, v := range pending {
		if v.Decision == DecAccept {
			return DecReject, ReasonNone
		}
	}
	// Value constraints hold trivially under version serialization;
	// still enforce them so "Fast"-mode read-modify-writes abort
	// instead of violating stock >= 0.
	for _, con := range n.cfg.Constraints {
		if x, ok := opt.Update.NewValue.Attrs[con.Attr]; ok && !con.Satisfied(x) {
			return DecReject, ReasonNone
		}
	}
	return DecAccept, ReasonNone
}

func (n *StorageNode) evalCommutative(pending []VotedOption, opt Option, fast bool) (Decision, RejectReason) {
	if n.cfg.Mode == ModeFast || n.cfg.Mode == ModeMulti {
		// Commutative support is the MDCC configuration's feature.
		// Fast/Multi callers should have converted to physical
		// updates; reject rather than guess.
		return DecReject, ReasonNone
	}
	// Kind-disjoint rule, other direction: deltas on a physically
	// rewritten key would fork unmergeably against the next rewrite.
	if n.rs(opt.Update.Key).kind == record.KindPhysical {
		n.nMixedKindRejects++
		return DecReject, ReasonMixedKinds
	}
	// Commutative options do not commute with an outstanding
	// physical rewrite of the same record, nor with an outstanding
	// read check (whose transaction's validity depends on the record
	// not changing).
	for _, v := range pending {
		if v.Decision == DecAccept && v.Opt.Update.Kind != record.KindCommutative {
			return DecReject, ReasonNone
		}
	}
	val, _, _ := n.store.Get(opt.Update.Key)
	for attr, delta := range opt.Update.Deltas {
		con, ok := n.cfg.constraintFor(attr)
		if !ok {
			continue // unconstrained attributes always commute
		}
		if !n.deltaSafe(pending, val, attr, delta, con, fast) {
			if fast {
				n.nDemarcationRejects++
			}
			return DecReject, ReasonNone
		}
	}
	return DecAccept, ReasonNone
}

// deltaSafe decides whether accepting one more delta on attr keeps
// the constraint safe under every commit/abort permutation of the
// outstanding options (escrow, §3.4.2). In fast ballots the bound is
// tightened to the quorum demarcation limit
//
//	L = min + (N-Q_F)/N · (X - min)
//
// because each storage node only sees its own copy of the X "resources"
// and a fast quorum consumes Q_F of the N·X total per committed unit;
// the (N-Q_F)/N headroom can be stranded on other replicas. Classic
// ballots are serialized by the leader, so the raw bound applies.
func (n *StorageNode) deltaSafe(pending []VotedOption, val record.Value, attr string, delta int64, con record.Constraint, fast bool) bool {
	pendDown, pendUp := pendingSums(pending, attr)
	return DeltaSafe(val.Attrs[attr], pendDown, pendUp, delta, con, n.q, fast)
}

// DeltaSafe is the escrow admission predicate shared by acceptors and
// their mirrors (the gateway tier's headroom accounting, parity fuzz
// oracles): would accepting one more delta on top of the worst-case
// pending movement keep the constraint safe under every commit/abort
// permutation? fast selects the quorum demarcation limits instead of
// the raw bounds.
func DeltaSafe(base, pendDown, pendUp, delta int64, con record.Constraint, q paxos.Quorum, fast bool) bool {
	// Worst-case pending movement: for the lower bound, every
	// outstanding decrement commits and every increment aborts;
	// symmetric for the upper bound.
	if delta < 0 {
		pendDown += delta
	} else {
		pendUp += delta
	}
	if con.Min != nil {
		lim := *con.Min
		if fast {
			lim = DemarcationLow(*con.Min, base, q)
		}
		if base+pendDown < lim {
			return false
		}
	}
	if con.Max != nil {
		lim := *con.Max
		if fast {
			lim = DemarcationHigh(*con.Max, base, q)
		}
		if base+pendUp > lim {
			return false
		}
	}
	return true
}

// DemarcationLow computes the lower demarcation limit. With min = 0
// this is the paper's L = (N-Q_F)/N · X, rounded up (conservative).
func DemarcationLow(min, base int64, q paxos.Quorum) int64 {
	head := base - min
	if head <= 0 {
		return min
	}
	slack := int64(q.N - q.Fast)
	return min + ceilDiv(head*slack, int64(q.N))
}

// DemarcationHigh mirrors DemarcationLow for upper bounds.
func DemarcationHigh(max, base int64, q paxos.Quorum) int64 {
	head := max - base
	if head <= 0 {
		return max
	}
	slack := int64(q.N - q.Fast)
	return max - ceilDiv(head*slack, int64(q.N))
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// onVisibility executes or discards an option (§3.2.1 "Learned"
// messages). Commit applies the update and bumps the version; abort
// discards. Both record the outcome for idempotence and recovery.
// The lineage summary keeps idempotence exact forever: a re-delivered
// visibility for an option whose decided-log entry was long released
// still skips, because the summary never forgets a settled identity.
func (n *StorageNode) onVisibility(m MsgVisibility) {
	key := m.Opt.Update.Key
	r := n.rs(key)
	id := m.Opt.ID()
	if _, ok := r.decided.get(id); ok {
		// Already executed or discarded; still release any lingering
		// vote (the settle may have arrived via a base adoption that
		// never saw the vote).
		n.pruneVote(r, id)
		return
	}
	if m.Opt.KeySeq > 0 && r.summary.Contains(laneOf(m.Opt.Tx), m.Opt.KeySeq) {
		n.pruneVote(r, id)
		return // settled knowledge outlived the decided-log cache
	}
	if traceOn(key) {
		_, ver, _ := n.store.Get(key)
		tracef("%v %s visibility tx=%s commit=%v ver=%d up=%s", n.net.Now().Unix(), n.id, m.Opt.Tx, m.Commit, ver, m.Opt.Update)
	}
	if n.tr != nil {
		now := n.net.Now()
		fl := uint8(trace.FlagCommit)
		if !m.Commit {
			fl = trace.FlagAbort
		}
		n.tr.Add(trace.Event{At: now.UnixNano(), Tx: string(m.Opt.Tx),
			Key: string(key), Stage: trace.StageVisibility, Flags: fl})
		// Vote → execution lag: how long the learned option waited
		// before its side effects became readable here.
		if at, ok := r.votedAt[id]; ok {
			n.cfg.Tracer.ObservePhase(trace.PhaseVisibility, int(n.dc), now.Sub(at))
		}
	}
	if m.Commit {
		n.settleOption(key, r, id, DecAccept, m.Opt, true)
		n.applyUpdate(m.Opt.Update)
		n.nExecuted++
	} else {
		n.settleOption(key, r, id, DecReject, m.Opt, true)
		n.nDiscarded++
	}
	// Both outcomes feed the visibility stream: a commit changed the
	// committed value, and even an abort freed pending escrow (the
	// post-pruneVote snapshot reflects it).
	n.pruneVote(r, id)
	n.markFeedDirty(key)
	n.leaderObserveVisibility(key, id)
}

// adoptBase reconciles a fresher (or equal-version but possibly
// diverged) committed base for key received from a peer — via
// anti-entropy, a Phase2a base, or a Phase1b reply. Commutative
// records can fork: replicas apply the same committed deltas in
// different orders, so two replicas at the same version may each hold
// deltas the other lacks, and blind version-max overwrite silently
// destroys the overwritten branch's unique applies.
//
// The base carries its exact LineageSummary — the options whose
// outcomes it reflects — and adoption re-applies on top of it every
// commutative delta this replica executed that the summary is
// missing. Contents for those grafts are always local (the decided
// log retains an apply until every peer's summary contains it, and an
// incoming base can only come from a peer), so no option contents
// ever cross replicas and the merge is exact regardless of how long
// ago the fork happened: retention is a cache knob, not a correctness
// input. The resulting summary is the union of both branches, which
// is sound because the merged value contains (or, for physical
// options, supersedes) every settled effect either branch reports.
//
// Physical-containment rule: if this replica holds a settled physical
// apply the incoming summary is missing AND the incoming branch
// contains commutative applies, adoption is refused — delta-inflated
// version counts do not prove supersession of a physical write (the
// insert-vs-early-deltas race), so convergence must flow the other
// way: the peer adopts our base (grafting its own extras), and we
// adopt the union later. Pure-physical branches need no such check:
// a committed physical write's vread proves its value derived through
// every lower version, so a higher pure-physical base supersedes by
// construction. Returns whether local state changed.
func (n *StorageNode) adoptBase(key record.Key, base record.Value, baseVer record.Version,
	lineage LineageSummary, via string) bool {
	cur, localVer, ok := n.store.Get(key)
	if baseVer < localVer {
		return false
	}
	r := n.rs(key)
	if baseVer == localVer && r.summary.ContainsAll(lineage) {
		// Nothing to learn: the incoming branch is a subset of ours at
		// the same version (equal sets when the peer is converged).
		// Equal version and value alone would NOT prove this — two
		// forks can coincidentally sum equal — but summary containment
		// does, exactly.
		return false
	}
	if lineage.Deltas {
		for _, id := range r.decided.order {
			e, _ := r.decided.entry(id)
			if e.Decision != DecAccept || e.kind != record.KindPhysical || e.keySeq == 0 {
				continue
			}
			if !lineage.Contains(e.lane, e.keySeq) {
				n.nAdoptRefused++
				if traceOn(key) {
					tracef("%v %s adopt-%s refused: local physical %s not in incoming lineage",
						n.net.Now().Unix(), n.id, via, id)
				}
				return false
			}
		}
	}
	val, ver := base, baseVer
	merged := 0
	for _, id := range r.decided.order {
		e, _ := r.decided.entry(id)
		if !e.HasOpt || e.Decision != DecAccept {
			continue
		}
		if e.Opt.Update.Kind != record.KindCommutative {
			// Physical applies are never grafted: either the incoming
			// summary contains them, or (pure-physical branch) the
			// higher base version proves supersession, or the refusal
			// above already bailed.
			continue
		}
		if e.keySeq == 0 {
			// No lineage identity (hand-built option): containment is
			// unprovable, so treat as contained rather than risk a
			// double apply. Coordinators always mint identities.
			continue
		}
		if lineage.Contains(e.lane, e.keySeq) {
			continue
		}
		val = e.Opt.Update.Apply(val)
		ver += e.Opt.Update.Span()
		merged++
	}
	n.nGrafted += int64(merged)
	if traceOn(key) {
		tracef("%v %s adopt-%s ver=%d->%d merged=%d val=%s incoming=%s",
			n.net.Now().Unix(), n.id, via, localVer, ver, merged, val, lineage)
	}
	if ver == localVer && merged == 0 && ok && cur.Equal(val) {
		// Same value and version, but the incoming summary knows
		// settles we don't (e.g. rejects, which bump no version):
		// absorb the knowledge without rewriting the store.
		r.summary.Union(lineage)
		r.noteKindFromSummary()
		n.logLineage(key, r.summary)
		return true
	}
	n.storePut(key, val, ver)
	r.summary.Union(lineage)
	r.noteKindFromSummary()
	n.logLineage(key, r.summary)
	n.markFeedDirty(key)
	return true
}

// decidedList snapshots a record's decided log in the pre-summary
// wire format (contents for commutative accepts). Kept solely as the
// Config.ShipFullLineage ablation payload, so the lineage-bytes
// benchmark can price the old format against summaries.
func decidedList(l *decidedLog) []DecidedOption {
	out := make([]DecidedOption, 0, len(l.order))
	for _, id := range l.order {
		e := l.byID[id]
		d := DecidedOption{ID: id, Decision: e.Decision}
		if e.HasOpt && e.Decision == DecAccept && e.Opt.Update.Kind == record.KindCommutative {
			d.Opt, d.HasOpt = e.Opt, true
		}
		out = append(out, d)
	}
	return out
}

// applyUpdate makes a committed update visible in the store.
func (n *StorageNode) applyUpdate(up record.Update) {
	if up.Kind == record.KindReadCheck {
		return // validation only
	}
	cur, ver, _ := n.store.Get(up.Key)
	switch up.Kind {
	case record.KindPhysical:
		newVer := up.ReadVersion + 1
		if newVer <= ver {
			return // already superseded by a later committed write
		}
		n.storePut(up.Key, up.NewValue, newVer)
	case record.KindCommutative:
		// Merged (gateway-coalesced) updates advance the version by the
		// number of client updates they carry, keeping per-client-update
		// version accounting exact.
		n.storePut(up.Key, up.Apply(cur), ver+up.Span())
	}
}

// pruneVote drops an unresolved vote once its option is settled.
func (n *StorageNode) pruneVote(r *recState, id OptionID) {
	delete(r.votedAt, id)
	for i, v := range r.votes {
		if v.Opt.ID() == id {
			r.votes = append(r.votes[:i], r.votes[i+1:]...)
			return
		}
	}
}

// onPhase1a promises a classic ballot and reports state (§3.1.1).
func (n *StorageNode) onPhase1a(from transport.NodeID, m MsgPhase1a) {
	r := n.rs(m.Key)
	if r.promised.Less(m.Ballot) {
		r.promised = m.Ballot
	}
	val, ver, ok := n.store.Get(m.Key)
	n.nPhase1++
	reply := MsgPhase1b{
		Key:     m.Key,
		Ballot:  r.promised, // echoes m.Ballot, or a higher promise (nack)
		Bal:     r.accepted,
		Votes:   append([]VotedOption(nil), r.votes...),
		Version: ver,
		Value:   val,
		Exists:  ok && !val.Tombstone,
		Lineage: r.summary.Clone(),
	}
	if n.cfg.ShipFullLineage {
		reply.LegacyDecided = decidedList(r.decided)
	}
	n.net.Send(n.id, from, reply)
}

// onPhase2a adopts the leader's cstruct (classic Phase2b, algorithm 3
// lines 72-77). Decisions were fixed by the leader, so all replicas
// store identical votes. A fresher committed base piggybacked by the
// leader catches up lagging replicas.
func (n *StorageNode) onPhase2a(from transport.NodeID, m MsgPhase2a) {
	r := n.rs(m.Key)
	if m.Ballot.Less(r.promised) {
		n.net.Send(n.id, from, MsgPhase2b{
			Key: m.Key, Ballot: m.Ballot, Seq: m.Seq, OK: false, Promised: r.promised,
		})
		return
	}
	if m.Ballot.Cmp(r.accepted) == 0 && m.Seq <= r.p2aSeq {
		// Duplicated or reordered proposal of the current ballot: this
		// snapshot (or a newer one) was already adopted. Re-ack without
		// touching state — re-adopting an older cstruct would silently
		// drop votes the leader has since added.
		n.net.Send(n.id, from, MsgPhase2b{Key: m.Key, Ballot: m.Ballot, Seq: m.Seq, OK: true})
		return
	}
	if m.Ballot.Cmp(r.accepted) != 0 {
		r.p2aSeq = 0 // new ballot: its proposal sequence starts over
	}
	r.promised = m.Ballot
	r.accepted = m.Ballot
	r.p2aSeq = m.Seq
	if m.HasBase {
		// A fresher committed base piggybacked by the leader catches up
		// (and merges with) lagging replicas. The leader's summary also
		// feeds the peer-ack ledger gating content release.
		n.notePeerLineage(r, from, m.BaseLineage)
		n.adoptBase(m.Key, m.BaseValue, m.BaseVersion, m.BaseLineage, "phase2a")
	}
	now := n.net.Now()
	r.votes = r.votes[:0]
	prevVotedAt := r.votedAt
	r.votedAt = make(map[OptionID]time.Time, len(m.CStruct))
	for _, v := range m.CStruct {
		if _, ok := r.decided.get(v.Opt.ID()); ok {
			continue // already settled locally (e.g. visibility raced ahead)
		}
		if v.Opt.KeySeq > 0 && r.summary.Contains(laneOf(v.Opt.Tx), v.Opt.KeySeq) {
			continue // settled knowledge outlived the decided-log cache
		}
		r.votes = append(r.votes, v)
		// votedAt measures how long the option has been unresolved, so
		// a re-adopted vote keeps its original timestamp. Resetting it
		// here would let a hot record's steady classic traffic refresh
		// the clock faster than PendingTimeout elapses, permanently
		// disarming the dangling-option sweep for an option whose
		// coordinator has already moved on — its visibility would
		// never be recovered.
		if at, ok := prevVotedAt[v.Opt.ID()]; ok {
			r.votedAt[v.Opt.ID()] = at
		} else {
			r.votedAt[v.Opt.ID()] = now
		}
	}
	n.nPhase2++
	n.net.Send(n.id, from, MsgPhase2b{Key: m.Key, Ballot: m.Ballot, Seq: m.Seq, OK: true})
}

// onEnableFast re-opens the record for master-bypassing proposals.
func (n *StorageNode) onEnableFast(m MsgEnableFast) {
	r := n.rs(m.Key)
	if r.promised.Less(m.Ballot) {
		r.promised = m.Ballot
		r.accepted = m.Ballot
		n.nEnableFast++
	}
}

// Lineage returns a copy of the record's exact applied-option
// summary (empty for unknown keys). Harnesses use it for the
// exact-convergence invariant; tools for inspection.
func (n *StorageNode) Lineage(key record.Key) LineageSummary {
	if r, ok := n.recs[key]; ok {
		return r.summary.Clone()
	}
	return LineageSummary{}
}

// LineageFingerprint renders the record's canonical lineage
// fingerprint (see LineageSummary.String): equal fingerprints mean
// identical settled sets. Packages that must not import core's types
// (internal/check) compare these strings.
func (n *StorageNode) LineageFingerprint(key record.Key) string {
	if r, ok := n.recs[key]; ok {
		return r.summary.String()
	}
	return LineageSummary{}.String()
}

// fnvID hashes a node id into an anti-entropy RNG seed so each node
// walks a different peer order deterministically.
func fnvID(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
