package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := NewReal()
	a := c.Now()
	b := time.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	c := NewReal()
	done := make(chan struct{})
	c.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestRealAfterStop(t *testing.T) {
	c := NewReal()
	var fired atomic.Bool
	tm := c.After(50*time.Millisecond, func() { fired.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop reported already-fired for a fresh timer")
	}
	time.Sleep(80 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired anyway")
	}
}

func TestManualNowAdvances(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewManual(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(3 * time.Second)
	if got, want := c.Now(), start.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestManualFiresInOrder(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	var order []int
	c.After(30*time.Millisecond, func() { order = append(order, 3) })
	c.After(10*time.Millisecond, func() { order = append(order, 1) })
	c.After(20*time.Millisecond, func() { order = append(order, 2) })
	c.Advance(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired in order %v, want [1 2 3]", order)
	}
}

func TestManualSameDeadlineFIFO(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.After(time.Millisecond, func() { order = append(order, i) })
	}
	c.Advance(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-deadline timers fired out of registration order: %v", order)
		}
	}
}

func TestManualPartialAdvance(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	fired := 0
	c.After(10*time.Millisecond, func() { fired++ })
	c.After(20*time.Millisecond, func() { fired++ })
	c.Advance(15 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d after partial advance, want 1", fired)
	}
	c.Advance(5 * time.Millisecond)
	if fired != 2 {
		t.Fatalf("fired = %d after full advance, want 2", fired)
	}
}

func TestManualStop(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	fired := false
	tm := c.After(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should return true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should return false")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped manual timer fired")
	}
}

func TestManualTimerSchedulesTimer(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	var hits []time.Time
	c.After(10*time.Millisecond, func() {
		hits = append(hits, c.Now())
		c.After(10*time.Millisecond, func() {
			hits = append(hits, c.Now())
		})
	})
	c.Advance(time.Second)
	if len(hits) != 2 {
		t.Fatalf("nested timer chain fired %d times, want 2", len(hits))
	}
	if d := hits[1].Sub(hits[0]); d != 10*time.Millisecond {
		t.Fatalf("nested timer delta = %v, want 10ms", d)
	}
}

func TestManualNegativeDelayFiresImmediately(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	fired := false
	c.After(-time.Second, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay timer did not fire on Advance(0)")
	}
}
