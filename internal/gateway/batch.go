package gateway

import (
	"sync"
	"sync/atomic"
	"time"

	"mdcc/internal/clock"
	"mdcc/internal/transport"
)

// batcher is a transport.Network decorator that coalesces outbound
// messages bound for the same destination node within a small
// time/size window into one transport.Batch envelope. The pooled
// coordinators send through it, so proposals, visibility and recovery
// messages of *different* transactions (and different coordinators)
// destined for the same acceptor share a wire message — the paper's
// §7 per-transaction batching generalized across transactions.
//
// Per-destination buffers are FIFO, so messages of one (from, to)
// pair keep their send order through coalescing: they end up either
// in the same envelope (items preserve order) or in consecutive ones.
type batcher struct {
	inner  transport.Network
	on     transport.NodeID // timer anchor (the gateway's node)
	window time.Duration
	max    int
	// tracer, when set, stamps each buffered item's Lamport clock at
	// buffering time: a Batch envelope's outer stamp is applied at
	// flush, which would otherwise order all inner items after sends
	// that happened between buffering and flush.
	tracer transport.WireTracer

	mu  sync.Mutex
	buf map[transport.NodeID][]transport.Envelope

	// Counters (read via the gateway's Metrics).
	envelopes atomic.Int64 // batch envelopes sent (fan-in >= 2)
	batched   atomic.Int64 // messages carried inside those envelopes
	singles   atomic.Int64 // messages that found no window partner
}

func newBatcher(inner transport.Network, on transport.NodeID, window time.Duration, max int) *batcher {
	if max < 2 {
		max = 2
	}
	return &batcher{
		inner:  inner,
		on:     on,
		window: window,
		max:    max,
		buf:    make(map[transport.NodeID][]transport.Envelope),
	}
}

// Register, After and Now pass through to the wrapped network.
func (b *batcher) Register(id transport.NodeID, h transport.Handler) { b.inner.Register(id, h) }
func (b *batcher) After(on transport.NodeID, d time.Duration, f func()) clock.Timer {
	return b.inner.After(on, d, f)
}
func (b *batcher) Now() time.Time { return b.inner.Now() }

// Send buffers the message in its destination's window; the window
// flushes when full or when its timer fires, whichever is first.
func (b *batcher) Send(from, to transport.NodeID, msg transport.Message) {
	if b.window <= 0 {
		b.inner.Send(from, to, msg)
		return
	}
	e := transport.Envelope{From: from, To: to, Msg: msg}
	if b.tracer != nil {
		e.TraceClk = b.tracer.StampSend()
	}
	b.mu.Lock()
	q := append(b.buf[to], e)
	b.buf[to] = q
	if len(q) >= b.max {
		b.flushLocked(to)
		b.mu.Unlock()
		return
	}
	first := len(q) == 1
	b.mu.Unlock()
	if first {
		// First message of a fresh window: arm its flush timer. A
		// size-triggered flush may leave this timer to fire on a
		// younger window — that only shortens that window, never loses
		// or reorders messages.
		b.inner.After(b.on, b.window, func() { b.flush(to) })
	}
}

func (b *batcher) flush(to transport.NodeID) {
	b.mu.Lock()
	b.flushLocked(to)
	b.mu.Unlock()
}

func (b *batcher) flushLocked(to transport.NodeID) {
	items := b.buf[to]
	if len(items) == 0 {
		return
	}
	if len(items) == 1 {
		// Keep the map entry and its backing array so the common
		// single-message window flushes allocation-free (destinations
		// are bounded by the topology, so retained entries are too).
		b.singles.Add(1)
		e := items[0]
		items[0] = transport.Envelope{}
		b.buf[to] = items[:0]
		b.inner.Send(e.From, to, e.Msg)
		return
	}
	// The slice escapes into an asynchronously serialized Batch and
	// cannot be reused; the next window for this peer reallocates.
	b.buf[to] = nil
	b.envelopes.Add(1)
	b.batched.Add(int64(len(items)))
	// The envelope's outer From is the gateway node; receivers dispatch
	// each item under its own original From.
	b.inner.Send(b.on, to, transport.Batch{Items: items})
}

// flushAll drains every pending window (shutdown).
func (b *batcher) flushAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for to := range b.buf {
		b.flushLocked(to)
	}
}
