package mdcc

import (
	"sync"
	"testing"
	"time"
)

// TestGatewaySessionsCoalesceHotKey attaches many sessions to one
// DC's gateway, stampedes a hot stock key with commutative
// decrements, and verifies conservation, version accounting and that
// the stampede was actually merged into few Paxos options.
func TestGatewaySessionsCoalesceHotKey(t *testing.T) {
	c, err := StartCluster(ClusterConfig{
		LatencyScale: 0.02,
		Constraints:  []Constraint{MinBound("units", 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	admin := c.Session(USWest)
	const initial = int64(100000)
	keys := []Key{"stock/a", "stock/b"}
	for _, k := range keys {
		if ok, err := admin.Commit(Insert(k, Value{Attrs: map[string]int64{"units": initial}})); err != nil || !ok {
			t.Fatalf("preload %s: ok=%v err=%v", k, ok, err)
		}
	}

	// One concurrent burst: every transaction in flight at once, the
	// shape a flash sale produces. Two hot keys make two merge windows
	// flush concurrently, so their options share batch envelopes.
	gw := c.Gateway(USWest)
	// Warm the gateway's escrow headroom accounts first: admission is
	// conservative (no merging) until an acceptor-piggybacked snapshot
	// arrives, and a read reply carries one per key.
	warm := gw.Session()
	for _, k := range keys {
		if _, _, _, err := warm.Read(k); err != nil {
			t.Fatalf("warm read %s: %v", k, err)
		}
	}
	warmDeadline := time.Now().Add(5 * time.Second)
	for gw.Metrics().TrackedKeys < int64(len(keys)) {
		if time.Now().After(warmDeadline) {
			t.Fatalf("escrow snapshots never arrived: %+v", gw.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
	const burst = 128
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits := 0
	for i := 0; i < burst; i++ {
		key := keys[i%len(keys)]
		sess := gw.Session()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := sess.Commit(Commutative(key, map[string]int64{"units": -1}))
			if err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			if ok {
				mu.Lock()
				commits++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if commits != burst {
		t.Fatalf("%d of %d stampede transactions committed", commits, burst)
	}
	// Conservation and per-client-update version accounting, read
	// fresh (visibility is asynchronous).
	perKey := int64(burst / len(keys))
	for _, k := range keys {
		deadline := time.Now().Add(5 * time.Second)
		for {
			val, ver, ok, err := admin.ReadLatest(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok && val.Attr("units") == initial-perKey && ver == Version(1+perKey) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: units=%d ver=%d, want units=%d ver=%d",
					k, val.Attr("units"), ver, initial-perKey, 1+perKey)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	m := gw.Metrics()
	if m.Commits != int64(commits) {
		t.Errorf("gateway commits=%d, want %d", m.Commits, commits)
	}
	if m.MergedOptions == 0 {
		t.Errorf("expected merged options, metrics: %+v", m)
	}
	if s, ok := gw.Session().GatewayMetrics(); !ok || s.Submitted == 0 {
		t.Errorf("Session.GatewayMetrics not surfaced: ok=%v %+v", ok, s)
	}
	if ts := c.TransportStats(); ts.BatchesSent == 0 || ts.BatchedSent < 2*ts.BatchesSent {
		t.Errorf("expected cross-transaction batch envelopes on the transport: %+v", ts)
	}
}

// TestGatewaySessionMixedTransactions checks that multi-update
// (non-coalescible) transactions pass through the gateway unchanged:
// atomicity and read-your-writes behave as with private coordinators.
func TestGatewaySessionMixedTransactions(t *testing.T) {
	c, err := StartCluster(ClusterConfig{
		LatencyScale: 0.02,
		Constraints:  []Constraint{MinBound("stock", 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess := c.Gateway(APTokyo).Session()
	if ok, err := sess.Commit(
		Insert("item/1", Value{Attrs: map[string]int64{"stock": 5, "price": 100}}),
		Insert("order/1", Value{Attrs: map[string]int64{"qty": 0}}),
	); err != nil || !ok {
		t.Fatalf("insert: ok=%v err=%v", ok, err)
	}
	// Atomic buy: decrement + order row.
	if ok, err := sess.Commit(
		Commutative("item/1", map[string]int64{"stock": -2}),
		Insert("order/2", Value{Attrs: map[string]int64{"qty": 2}}),
	); err != nil || !ok {
		t.Fatalf("buy: ok=%v err=%v", ok, err)
	}
	val, _, ok, err := sess.ReadLatest("item/1")
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	if val.Attr("stock") != 3 {
		t.Errorf("stock=%d, want 3", val.Attr("stock"))
	}
	// Overdraw must abort atomically (no order row).
	ok, err = sess.Commit(
		Commutative("item/1", map[string]int64{"stock": -10}),
		Insert("order/3", Value{Attrs: map[string]int64{"qty": 10}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("overdraw committed")
	}
	if _, _, exists, _ := sess.ReadLatest("order/3"); exists {
		t.Error("aborted transaction leaked its order row")
	}
}

// TestGatewaySessionGuaranteesThroughReadTier runs a session with
// monotonic-reads/read-your-writes enabled against the gateway read
// tier on the real-time transport: every read after a committed
// physical write must observe it (the session floor walks the tier's
// fallback ladder instead of trusting a lagging memory copy), and a
// long read loop must never go backwards while commutative writers
// move the key underneath it.
func TestGatewaySessionGuaranteesThroughReadTier(t *testing.T) {
	c, err := StartCluster(ClusterConfig{LatencyScale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gw := c.Gateway(USWest)
	s := gw.Session()
	s.EnableSessionGuarantees()
	if ok, err := s.Commit(Insert("rt/1", Value{Attrs: map[string]int64{"x": 0}})); err != nil || !ok {
		t.Fatalf("insert: ok=%v err=%v", ok, err)
	}
	// Ten RMW rounds: each read must see the previous write (RYW),
	// version strictly monotone.
	var last Version
	for i := int64(1); i <= 10; i++ {
		val, ver, exists, err := s.Read("rt/1")
		if err != nil || !exists {
			t.Fatalf("round %d read: exists=%v err=%v", i, exists, err)
		}
		if ver < last {
			t.Fatalf("round %d: version went backwards %d -> %d", i, last, ver)
		}
		if val.Attr("x") != i-1 {
			t.Fatalf("round %d: read stale x=%d (ver %d), want %d", i, val.Attr("x"), ver, i-1)
		}
		ok, err := s.Commit(Physical("rt/1", ver, val.WithAttr("x", i)))
		if err != nil || !ok {
			t.Fatalf("round %d write: ok=%v err=%v", i, ok, err)
		}
		last = ver + 1
	}
	// The tier must actually be in the path (not silently disabled).
	m := gw.Metrics()
	if m.LocalReads == 0 && m.ReadRPCs == 0 {
		t.Fatalf("read tier never saw the reads: %+v", m)
	}
}

// TestDialGatewayRoundTrip runs a server-side gateway and a thin RPC
// client in-process over real TCP sockets.
func TestDialGatewayRoundTrip(t *testing.T) {
	topo := startTCPDeployment(t, ModeMDCC, nil, true)

	sess, err := DialGateway(topo, USWest, "gwcli1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if ok, err := sess.Commit(Insert("k/1", Value{Attrs: map[string]int64{"v": 7}})); err != nil || !ok {
		t.Fatalf("commit via gateway RPC: ok=%v err=%v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		val, _, ok, err := sess.Read("k/1")
		if err != nil {
			t.Fatal(err)
		}
		if ok && val.Attr("v") == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read after commit: ok=%v val=%v", ok, val)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A second client shares the same gateway tier.
	sess2, err := DialGateway(topo, USEast, "gwcli2", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	if ok, err := sess2.Commit(Commutative("k/1", map[string]int64{"v": 3})); err != nil || !ok {
		t.Fatalf("commutative via gateway: ok=%v err=%v", ok, err)
	}
}
