// Failover: the figure-8 scenario interactively — writes flow from
// US-West while the US-East data center (the closest remote replica)
// is killed mid-run. MDCC keeps committing without interruption
// because fast quorums (4 of 5) and classic quorums (3 of 5) both
// survive a single-DC outage; latency rises because the next-nearest
// data center is farther away.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"mdcc"
)

func main() {
	cluster, err := mdcc.StartCluster(mdcc.ClusterConfig{
		Mode:         mdcc.ModeMDCC,
		LatencyScale: 0.05, // 1 virtual WAN ms = 50µs
		Constraints:  []mdcc.Constraint{mdcc.MinBound("stock", 0)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	sess := cluster.Session(mdcc.USWest)
	if ok, err := sess.Commit(mdcc.Insert("item/1",
		mdcc.Value{Attrs: map[string]int64{"stock": 1 << 30}})); err != nil || !ok {
		log.Fatalf("setup: ok=%v err=%v", ok, err)
	}

	const rounds = 60
	failAt, recoverAt := 20, 40
	var pre, during, post []time.Duration

	for i := 0; i < rounds; i++ {
		switch i {
		case failAt:
			fmt.Println("!! killing us-east (closest remote data center)")
			cluster.FailDC(mdcc.USEast)
		case recoverAt:
			fmt.Println("!! us-east recovers")
			cluster.RecoverDC(mdcc.USEast)
		}
		start := time.Now()
		ok, err := sess.Commit(mdcc.Commutative("item/1", map[string]int64{"stock": -1}))
		lat := time.Since(start)
		if err != nil {
			log.Fatalf("round %d: %v", i, err)
		}
		if !ok {
			fmt.Printf("round %2d: ABORTED after %v\n", i, lat)
			continue
		}
		switch {
		case i < failAt:
			pre = append(pre, lat)
		case i < recoverAt:
			during = append(during, lat)
		default:
			post = append(post, lat)
		}
	}

	fmt.Printf("\ncommitted every round across the outage:\n")
	fmt.Printf("  before failure: avg %v over %d commits\n", avg(pre), len(pre))
	fmt.Printf("  during outage:  avg %v over %d commits (waits for a farther DC)\n", avg(during), len(during))
	fmt.Printf("  after recovery: avg %v over %d commits\n", avg(post), len(post))
	if len(pre) == 0 || len(during) == 0 || len(post) == 0 {
		log.Fatal("some phase recorded no commits — failover was not seamless")
	}
	fmt.Println("\nMDCC tolerated the data-center outage without losing a single commit.")
}

func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
