package core

import (
	"time"

	"mdcc/internal/record"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// Committed-visibility feed: the wire machinery behind the gateway
// tier's learned-replica read path. A DC-local subscriber (the
// gateway) asks a storage node to stream every change to its
// committed state; the node batches the keys dirtied while
// dispatching one inbound envelope into a single MsgVisibilityFeed
// per subscriber — the same zero-added-latency flush discipline as
// outbound vote batching — so at steady state the feed rides the
// dispatch cadence the node already pays for. Each item carries the
// committed value, its version, and the record's escrow snapshot, so
// gateway headroom accounts refresh on the same stream.
//
// The feed is a cache-fill channel, never a correctness channel:
// every item is committed state (read committed by construction), and
// consumers detect loss through the per-subscription (Epoch, Seq)
// numbering — a gap or a silence longer than the keepalive interval
// means "resubscribe and catch up", not "serve wrong data".

// MsgVisibilitySub subscribes the sender to this storage node's
// committed-visibility feed. Epoch identifies the subscription
// incarnation (a resubscribing or restarted gateway bumps it so
// in-flight messages of the old stream cannot be mistaken for the new
// one). CatchUp lists keys the subscriber already materializes; the
// node answers with their current committed state in the hello
// message (the snapshot catch-up that closes a detected gap).
type MsgVisibilitySub struct {
	Epoch   uint64
	CatchUp []record.Key
}

// FeedItem is one key's committed state on the feed.
type FeedItem struct {
	Key     record.Key
	Value   record.Value
	Version record.Version
	Exists  bool
	// Escrow is the node's demarcation snapshot for the key (valid
	// only under configured constraints), so escrow freshness rides
	// the same stream as value freshness.
	Escrow EscrowSnap
}

// MsgVisibilityFeed is one batch of committed-state changes. Seq is
// contiguous per (subscriber, Epoch) starting at 1 (the subscription
// hello, which carries the catch-up items); any hole means messages
// were lost and the subscriber must resubscribe. Empty Items are
// keepalives: they prove stream liveness through quiet periods, which
// is what bounds the staleness of a served read. Boot identifies the
// publisher incarnation: a restarted storage node loses its volatile
// subscriber table, and a same-epoch (re)registration to the fresh
// incarnation restarts the sequence at 1 — without Boot, the new
// stream's low sequence numbers alias the old stream's
// already-consumed ones and everything in between is discarded as
// duplicates instead of triggering a resync.
type MsgVisibilityFeed struct {
	Epoch uint64
	Seq   uint64
	Boot  uint64
	Items []FeedItem
}

func init() {
	transport.RegisterMessage(MsgVisibilitySub{})
	transport.RegisterMessage(MsgVisibilityFeed{})
}

// FeedCatchUpMax caps the catch-up items answered in one hello so a
// pathological subscriber cannot request an unbounded snapshot.
// Exported because subscribers size their catch-up lists to it — a
// subscriber listing more would silently believe truncated keys are
// registered.
const FeedCatchUpMax = 4096

// feedInterestMax bounds the per-subscriber interest set. Keys
// arriving beyond it are rejected: neither registered NOR echoed —
// the echo is the subscriber's proof of coverage (it serves from
// memory only keys the stream has confirmed), so echoing an
// unregistered key would license serving a copy the stream will
// never refresh. Rejected keys simply stay on the RPC path.
// (A var, not a const, so tests can exercise the cap.)
var feedInterestMax = 1 << 16

// feedSub is one subscriber's stream state on the storage node.
// interest is the subscriber's materialized working set: the feed
// streams ONLY these keys, so its cost scales with what is read, not
// with what is written (a write-only workload costs keepalives and
// nothing else). Registration is the subscription's CatchUp list;
// same-epoch subscriptions add to it incrementally (the gateway sends
// one per cold-miss fill) and a new epoch replaces it wholesale.
type feedSub struct {
	epoch     uint64
	seq       uint64
	lastSent  time.Time
	lastHeard time.Time // last (re)subscription/renewal from the subscriber
	interest  map[record.Key]bool
}

// feedSubTTL expires subscriptions whose subscriber has gone silent:
// live gateways renew periodically (a same-epoch empty subscription,
// see the gateway's feed check); one that crashed for good stops, and
// without expiry the node would keepalive a dead address forever.
const feedSubTTL = 2 * time.Minute

// feedFlushInterval resolves the flush rate limit.
func (c Config) feedFlushInterval() time.Duration {
	if c.FeedFlushInterval > 0 {
		return c.FeedFlushInterval
	}
	return 10 * time.Millisecond
}

// onVisibilitySub (re)registers a subscriber and answers with the
// hello: Seq 1 of the new epoch, carrying the requested catch-up
// state. Keyed by sender, so a resubscription replaces the old
// stream. A DUPLICATE subscription (same epoch — a retransmitting
// network) must NOT reset the sequence counter: resetting would
// renumber in-flight messages the subscriber already consumed, and a
// later real item could land on an already-consumed sequence number
// and be dropped as stale — silent, undetected staleness. Instead the
// duplicate is answered in-stream: a normal next-seq message carrying
// the requested catch-up, contiguous with everything before it.
func (n *StorageNode) onVisibilitySub(from transport.NodeID, m MsgVisibilitySub) {
	sub, ok := n.feedSubs[from]
	if !ok {
		sub = &feedSub{}
		n.feedSubs[from] = sub
		n.feedSubOrder = append(n.feedSubOrder, from)
	}
	if ok && m.Epoch < sub.epoch {
		// A delayed or duplicated subscription from a superseded epoch
		// (subscriber epochs only ever increase): accepting it would
		// regress the stream — wipe the live interest set, restart the
		// numbering, and ship everything under an epoch the subscriber
		// now discards, silencing the feed until its TTL resync.
		return
	}
	if !ok || sub.epoch != m.Epoch {
		sub.epoch = m.Epoch
		sub.seq = 0
		sub.interest = make(map[record.Key]bool, len(m.CatchUp))
	}
	sub.lastHeard = n.net.Now()
	items := make([]FeedItem, 0, len(m.CatchUp))
	for i, key := range m.CatchUp {
		if i >= FeedCatchUpMax {
			break
		}
		if !sub.interest[key] {
			if len(sub.interest) >= feedInterestMax {
				continue // rejected: not registered, so never echoed
			}
			sub.interest[key] = true
		}
		items = append(items, n.feedItem(key, from))
	}
	n.sendFeed(from, sub, items)
	if !n.feedKeepAliveArmed {
		n.feedKeepAliveArmed = true
		n.scheduleFeedKeepAlive()
	}
}

// feedItem snapshots one key's committed state for the feed,
// addressed to one subscriber (the escrow snapshot's contender count
// includes the recipient's group; see contenderGroups).
func (n *StorageNode) feedItem(key record.Key, to transport.NodeID) FeedItem {
	val, ver, ok := n.store.Get(key)
	return FeedItem{
		Key:     key,
		Value:   val,
		Version: ver,
		Exists:  ok && !val.Tombstone,
		Escrow:  n.escrowSnap(key, val, ver, to),
	}
}

// markFeedDirty queues a key whose committed state (or escrow
// pendings) changed for the end-of-dispatch feed flush — only if some
// subscriber registered interest in it. Outside a dispatch
// (timer-driven mutations) the flush happens immediately.
func (n *StorageNode) markFeedDirty(key record.Key) {
	if len(n.feedSubs) == 0 || n.feedDirtySet[key] {
		return
	}
	wanted := false
	for _, sub := range n.feedSubs {
		if sub.interest[key] {
			wanted = true
			break
		}
	}
	if !wanted {
		return
	}
	n.feedDirtySet[key] = true
	n.feedDirty = append(n.feedDirty, key)
	if n.dispatchDepth == 0 {
		n.flushFeeds()
	}
}

// flushFeeds ships the dirtied keys, rate-limited to one feed message
// per subscriber per FeedFlushInterval: the first flush after a quiet
// period goes out immediately (steady-state staleness of one
// dispatch), but under write saturation — when every dispatch
// executes visibilities — consecutive flushes coalesce into one
// message per interval. Without the limit, a saturated shard emits
// one feed message per dispatch and the subscriber's service time
// (which its coalesce-window and sweep timers share) melts under the
// stream, taxing the very write path the feed is observing.
func (n *StorageNode) flushFeeds() {
	// Degraded nodes cleared feedDirty already (see degrade); the guard
	// keeps keys dirtied before the failure from being fed as durable.
	if n.halted || len(n.feedDirty) == 0 || len(n.feedSubs) == 0 {
		return
	}
	now := n.net.Now()
	interval := n.cfg.feedFlushInterval()
	if since := now.Sub(n.feedLastFlush); since < interval {
		if !n.feedFlushArmed {
			n.feedFlushArmed = true
			n.net.After(n.id, interval-since, func() {
				n.feedFlushArmed = false
				if n.halted {
					return
				}
				n.flushFeedsNow()
			})
		}
		return
	}
	n.flushFeedsNow()
}

// flushFeedsNow ships everything dirty as one feed message per
// interested subscriber (insertion order, so runs are deterministic).
func (n *StorageNode) flushFeedsNow() {
	if len(n.feedDirty) == 0 || len(n.feedSubs) == 0 {
		return
	}
	n.feedLastFlush = n.net.Now()
	dirty := append([]record.Key(nil), n.feedDirty...)
	for _, key := range dirty {
		delete(n.feedDirtySet, key)
	}
	n.feedDirty = n.feedDirty[:0]
	for _, to := range n.feedSubOrder {
		sub := n.feedSubs[to]
		// Filter by the subscriber's CURRENT interest — always, even
		// with a single subscriber. A key can be queued under one
		// interest set and flushed (rate-limit deferred) after an epoch
		// switch replaced it; shipping it then would echo-confirm a key
		// the new stream does not cover, and the subscriber would serve
		// its frozen copy forever. Items are built per subscriber so
		// the escrow snapshot's contender count can include the
		// recipient (subscriber fan-out is one gateway per DC, so the
		// duplicate snapshot work is bounded and tiny).
		send := make([]FeedItem, 0, len(dirty))
		for _, key := range dirty {
			if sub.interest[key] {
				send = append(send, n.feedItem(key, to))
			}
		}
		if len(send) == 0 {
			continue
		}
		n.sendFeed(to, sub, send)
	}
}

func (n *StorageNode) sendFeed(to transport.NodeID, sub *feedSub, items []FeedItem) {
	sub.seq++
	sub.lastSent = n.net.Now()
	n.nFeedMsgs++
	n.nFeedItems += int64(len(items))
	if n.tr != nil && len(items) > 0 {
		// Tx-less: feed items carry keys, not transactions; timelines
		// adopt them through their key sets.
		at := n.net.Now().UnixNano()
		for _, it := range items {
			n.tr.Add(trace.Event{At: at, Key: string(it.Key), Stage: trace.StageFeedPub})
		}
	}
	n.net.Send(n.id, to, MsgVisibilityFeed{Epoch: sub.epoch, Seq: sub.seq, Boot: n.feedBoot, Items: items})
}

// scheduleFeedKeepAlive arms the periodic keepalive: any subscriber
// that heard nothing for a full interval gets an empty feed message,
// proving the stream alive through quiet periods. The interval is the
// node-side half of the read tier's staleness bound (the gateway
// declares a feed dead after Tuning.FeedTTL of silence).
func (n *StorageNode) scheduleFeedKeepAlive() {
	n.net.After(n.id, n.cfg.feedKeepAlive(), func() {
		if n.halted {
			return
		}
		if len(n.feedSubs) == 0 {
			// Every subscriber expired: stop ticking; the next
			// subscription re-arms.
			n.feedKeepAliveArmed = false
			return
		}
		now := n.net.Now()
		// Expire subscribers that stopped renewing (crashed for good,
		// decommissioned) before keepaliving the rest.
		live := n.feedSubOrder[:0]
		for _, to := range n.feedSubOrder {
			sub := n.feedSubs[to]
			if now.Sub(sub.lastHeard) > feedSubTTL {
				delete(n.feedSubs, to)
				continue
			}
			live = append(live, to)
		}
		n.feedSubOrder = live
		for _, to := range n.feedSubOrder {
			sub := n.feedSubs[to]
			if now.Sub(sub.lastSent) >= n.cfg.feedKeepAlive() {
				n.sendFeed(to, sub, nil)
			}
		}
		n.scheduleFeedKeepAlive()
	})
}
