package check

import (
	"testing"

	"mdcc/internal/record"
)

// Unit tests for the session-guarantee read validator
// (ValidateSessionReads): monotonic reads and read-your-writes per
// client, recomputed purely from the recorded history.

func TestSessionReadsMonotonicViolation(t *testing.T) {
	h := New()
	h.ObserveRead(0, "k", 5, true)
	h.ObserveRead(0, "k", 3, true) // went backwards
	errs := h.ValidateSessionReads()
	if len(errs) != 1 || !containsStr(errs[0].Error(), "session guarantee violated") {
		t.Fatalf("monotonic violation not detected: %v", errs)
	}
}

func TestSessionReadsMonotonicPerClientAndKey(t *testing.T) {
	h := New()
	// Different clients may observe different orders; different keys
	// are independent floors.
	h.ObserveRead(0, "k", 5, true)
	h.ObserveRead(1, "k", 3, true)
	h.ObserveRead(0, "other", 1, true)
	h.ObserveRead(0, "k", 5, true)
	h.ObserveRead(1, "k", 4, true)
	if errs := h.ValidateSessionReads(); len(errs) != 0 {
		t.Fatalf("clean cross-client history flagged: %v", errs)
	}
}

func TestSessionReadsReadYourWrites(t *testing.T) {
	h := New()
	c := h.Client(0, fakeClient{commit: true})
	h.ObserveRead(0, "k", 1, true)
	// Committed physical write at vread 1 -> produced version 2.
	c.Commit([]record.Update{record.Physical("k", 1, record.Value{Attrs: map[string]int64{"x": 1}})}, func(bool) {})
	h.ObserveRead(0, "k", 1, true) // must have seen >= 2
	errs := h.ValidateSessionReads()
	if len(errs) != 1 || !containsStr(errs[0].Error(), "after observing/writing version 2") {
		t.Fatalf("read-your-writes violation not detected: %v", errs)
	}
}

func TestSessionReadsUnknownAndAbortedWritesImposeNoFloor(t *testing.T) {
	h := New()
	aborted := h.Client(0, fakeClient{commit: false})
	h.ObserveRead(0, "k", 1, true)
	// An aborted write and an unacknowledged (orphaned) write: the
	// client never learned either committed, so reads at the old
	// version stay legal.
	aborted.Commit([]record.Update{record.Physical("k", 1, record.Value{Attrs: map[string]int64{"x": 1}})}, func(bool) {})
	h.Orphan(0, []record.Update{record.Physical("k", 1, record.Value{Attrs: map[string]int64{"x": 2}})})
	h.ObserveRead(0, "k", 1, true)
	if errs := h.ValidateSessionReads(); len(errs) != 0 {
		t.Fatalf("aborted/unknown writes raised a floor: %v", errs)
	}
}

func TestSessionReadsFailedReadsCarryNoVersion(t *testing.T) {
	h := New()
	h.ObserveRead(0, "k", 7, true)
	h.ObserveRead(0, "k", 0, false) // failed read: no ordering obligation
	h.ObserveRead(0, "k", 7, true)
	if errs := h.ValidateSessionReads(); len(errs) != 0 {
		t.Fatalf("failed read flagged: %v", errs)
	}
}
