// Shop: a miniature TPC-W-style storefront on the public API — the
// workload the paper's introduction motivates. Geo-distributed
// shoppers browse products, fill carts and buy; the buy decrements
// item stock under a stock >= 0 constraint (the one TPC-W transaction
// that benefits from commutativity, per §5.2) and inserts an order
// atomically with it.
//
// Shoppers attach to their data center's *gateway tier*
// (Cluster.Gateway) instead of owning private coordinators: browsing
// and buying multiplex over a bounded coordinator pool with
// cross-transaction batching. The finale is a flash sale — every
// shopper hammers one hot item with single-decrement buys, the shape
// the gateway's hot-key delta coalescing turns from O(buyers) into
// O(windows) Paxos options.
//
// Run with:
//
//	go run ./examples/shop
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"mdcc"
)

const (
	products = 50
	shoppers = 8
	visits   = 12 // browse/buy rounds per shopper
)

func itemKey(i int) mdcc.Key { return mdcc.Key(fmt.Sprintf("item/%04d", i)) }

func orderKey(shopper, n int) mdcc.Key {
	return mdcc.Key(fmt.Sprintf("order/%d-%d", shopper, n))
}

func main() {
	cluster, err := mdcc.StartCluster(mdcc.ClusterConfig{
		Mode:         mdcc.ModeMDCC,
		NodesPerDC:   2,
		LatencyScale: 0.02,
		Constraints:  []mdcc.Constraint{mdcc.MinBound("stock", 0)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// One gateway per data center; every shopper session attaches to
	// its local one.
	gws := make(map[mdcc.DC]*mdcc.Gateway)
	for _, dc := range mdcc.AllDCs() {
		gws[dc] = cluster.Gateway(dc)
	}

	// Load the catalogue.
	admin := gws[mdcc.USWest].Session()
	var ups []mdcc.Update
	totalStock := int64(0)
	for i := 0; i < products; i++ {
		stock := int64(5 + i%7)
		totalStock += stock
		ups = append(ups, mdcc.Insert(itemKey(i), mdcc.Value{
			Attrs: map[string]int64{"stock": stock, "price": int64(199 + 50*i)},
			Blob:  []byte(fmt.Sprintf("The Art of Distributed Systems, volume %d", i)),
		}))
	}
	// The flash-sale item: deep stock, one hot record.
	const flashItem = products
	const flashStock = int64(500)
	ups = append(ups, mdcc.Insert(itemKey(flashItem), mdcc.Value{
		Attrs: map[string]int64{"stock": flashStock, "price": 99},
		Blob:  []byte("The Art of Distributed Systems, collector's edition"),
	}))
	if ok, err := admin.Commit(ups...); err != nil || !ok {
		log.Fatalf("catalogue load: ok=%v err=%v", ok, err)
	}
	fmt.Printf("catalogue: %d products, %d units of stock (+%d flash-sale units)\n",
		products, totalStock, flashStock)

	var wg sync.WaitGroup
	var mu sync.Mutex
	bought := int64(0)
	orders := 0
	soldOut := 0
	for sh := 0; sh < shoppers; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			sess := gws[mdcc.DC(sh%5)].Session()
			rng := rand.New(rand.NewSource(int64(sh) + 42))
			for v := 0; v < visits; v++ {
				// Browse: read a few product pages (local reads).
				basket := map[int]int64{}
				for b := 0; b < 1+rng.Intn(3); b++ {
					p := rng.Intn(products)
					val, _, ok, err := sess.Read(itemKey(p))
					if err != nil || !ok {
						continue
					}
					if val.Attr("stock") > 0 {
						basket[p] = 1 + rng.Int63n(2)
					}
				}
				if len(basket) == 0 {
					continue
				}
				// Buy: one atomic transaction — stock decrements
				// (commutative, constraint-checked) plus the order row.
				// Multi-update transactions pass through the gateway
				// unmerged; atomicity is untouched.
				var buy []mdcc.Update
				var qty int64
				for p, q := range basket {
					buy = append(buy, mdcc.Commutative(itemKey(p), map[string]int64{"stock": -q}))
					qty += q
				}
				buy = append(buy, mdcc.Insert(orderKey(sh, v),
					mdcc.Value{Attrs: map[string]int64{"qty": qty}}))
				ok, err := sess.Commit(buy...)
				if err != nil {
					log.Printf("shopper %d: %v", sh, err)
					continue
				}
				mu.Lock()
				if ok {
					bought += qty
					orders++
				} else {
					soldOut++
				}
				mu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	fmt.Printf("orders placed: %d (%d units); %d buys rejected (stock protection)\n",
		orders, bought, soldOut)

	// Flash sale: every shopper fires a burst of single-unit buys at
	// the hot item concurrently. Single-update commutative buys are
	// exactly what the gateway coalesces into merged options.
	const flashBuyers = 40
	const buysEach = 6
	flashSold := int64(0)
	var fwg sync.WaitGroup
	for b := 0; b < flashBuyers; b++ {
		fwg.Add(1)
		go func(b int) {
			defer fwg.Done()
			sess := gws[mdcc.DC(b%5)].Session()
			for i := 0; i < buysEach; i++ {
				ok, err := sess.Commit(mdcc.Commutative(itemKey(flashItem), map[string]int64{"stock": -1}))
				if err != nil {
					log.Printf("flash buyer %d: %v", b, err)
					return
				}
				if ok {
					mu.Lock()
					flashSold++
					mu.Unlock()
				}
			}
		}(b)
	}
	fwg.Wait()
	fmt.Printf("flash sale: %d units sold by %d buyers\n", flashSold, flashBuyers)
	for _, dc := range mdcc.AllDCs() {
		m := gws[dc].Metrics()
		if m.MergedOptions > 0 {
			fmt.Printf("  gateway %-8s coalesced %d buys into %d Paxos options (ratio %.2f), batch fan-in %.1f\n",
				dc, m.MergedUpdates, m.MergedOptions, m.CoalesceRatio, m.BatchFanIn)
		}
	}

	// Reconcile: remaining stock + sold units == initial stock, and
	// every committed order exists.
	audit := gws[mdcc.APSingapore].Session()
	deadline := time.Now().Add(10 * time.Second)
	for {
		remaining := int64(0)
		for i := 0; i <= products; i++ {
			v, _, ok, err := audit.Read(itemKey(i))
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				if v.Attr("stock") < 0 {
					log.Fatal("INVARIANT VIOLATED: negative stock")
				}
				remaining += v.Attr("stock")
			}
		}
		sold := bought + flashSold
		initial := totalStock + flashStock
		if remaining+sold == initial {
			fmt.Printf("audit OK: %d units remaining + %d sold = %d initial\n",
				remaining, sold, initial)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("stock mismatch: %d remaining + %d sold != %d", remaining, sold, initial)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
