package mdcc

import (
	"errors"
	"sync"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// ErrTimeout is returned when a blocking call outlives its deadline.
var ErrTimeout = errors.New("mdcc: operation timed out")

// ErrClosed is returned on sessions whose cluster has shut down.
var ErrClosed = errors.New("mdcc: session closed")

// ErrOverloaded is returned when a gateway's admission control sheds
// a transaction (bounded in-flight window and backlog both full).
// The transaction was never submitted; retrying later is safe.
var ErrOverloaded = errors.New("mdcc: gateway overloaded")

// ErrOutcomeUnknown is the sentinel matched (via errors.Is) by
// OutcomeUnknownError: a submitted transaction whose acknowledgement
// was lost — typically swallowed by a crashed or unreachable gateway.
// Unlike ErrOverloaded, the transaction MAY have committed (the
// protocol settles every proposed option even if the submitter dies);
// blind retries can double-apply. Both the RPC client (DialGateway)
// and the in-process gateway path (a gateway torn down by
// Gateway.Kill-style crash handling) surface it.
var ErrOutcomeUnknown = errors.New("mdcc: transaction outcome unknown")

// ErrMixedUpdateKinds reports a transaction rejected by the
// kind-disjoint rule: a physical rewrite of a key with commutative
// history, or a commutative delta on a physically rewritten key.
// Mixing kinds on one key would make replica forks unmergeable
// (DESIGN.md §5), so acceptors reject it with this typed cause
// instead of a silent abort. Record-creating inserts are
// class-neutral; a key's class locks on its first non-creating
// update. Returned by Session.Commit with committed=false.
var ErrMixedUpdateKinds = core.ErrMixedUpdateKinds

// OutcomeUnknownError reports a transaction whose outcome the client
// never learned: it was handed to a gateway, the settle deadline
// passed, and no acknowledgement arrived (gateway crash, partition,
// lost reply). TxID names the submission so operators can correlate
// it with server-side logs and the unknown-outcome envelope the
// verification harness checks (internal/check.Op.Unknown).
type OutcomeUnknownError struct {
	TxID string
}

func (e *OutcomeUnknownError) Error() string {
	return "mdcc: outcome unknown for transaction " + e.TxID + " (gateway unreachable before acknowledgement)"
}

// Is matches ErrOutcomeUnknown so callers can errors.Is without
// caring about the id.
func (e *OutcomeUnknownError) Is(target error) bool { return target == ErrOutcomeUnknown }

// backend is what a Session drives: either a private coordinator (the
// paper's per-app-server DB library) or a shared gateway tier. All
// methods are safe to call from any goroutine; callbacks may fire on
// transport handler goroutines (or synchronously, for gateway reads
// served from the DC-local materialized store).
//
// Read's floor is the session's version floor for the key (0 = none):
// gateway backends use it to walk the read tier's fallback ladder
// (materialized store → single-flight RPC → quorum) without serving a
// stale memory copy; coordinator backends ignore it — a replica RPC
// read is the pre-tier behavior and the Session's own escalation loop
// still enforces the floor on the result.
type backend interface {
	Read(key Key, floor Version, cb func(record.Value, record.Version, bool))
	ReadQuorum(key Key, cb func(record.Value, record.Version, bool))
	Commit(updates []Update, done func(committed bool, err error))
	Metrics() core.CoordMetrics
}

// coordBackend drives a session-private core.Coordinator, funneling
// every call through the coordinator node's serialized executor.
type coordBackend struct {
	id    transport.NodeID
	net   transport.Network
	coord *core.Coordinator
}

func (b coordBackend) Read(key Key, _ Version, cb func(record.Value, record.Version, bool)) {
	b.net.After(b.id, 0, func() { b.coord.Read(key, cb) })
}

func (b coordBackend) ReadQuorum(key Key, cb func(record.Value, record.Version, bool)) {
	b.net.After(b.id, 0, func() { b.coord.ReadQuorum(key, cb) })
}

func (b coordBackend) Commit(updates []Update, done func(bool, error)) {
	b.net.After(b.id, 0, func() {
		b.coord.Commit(updates, func(r core.CommitResult) { done(r.Committed, r.Err) })
	})
}

func (b coordBackend) Metrics() core.CoordMetrics { return b.coord.Metrics() }

// Session is a blocking client facade over a callback-based backend —
// a private coordinator (the paper's app-server DB library) or a
// shared DC-local gateway (see Cluster.Gateway). Sessions are safe
// for concurrent use.
type Session struct {
	b       backend
	timeout time.Duration

	// gwMetrics, when non-nil, exposes the gateway tier this session
	// is attached to.
	gwMetrics func() GatewayMetrics

	// Session guarantees (§4.2): when enabled, reads never go
	// backwards within the session (monotonic reads) and observe the
	// session's own committed physical writes (read-your-writes),
	// implemented by tracking a per-key version floor and escalating
	// to quorum reads when the local replica lags it.
	gmu       sync.Mutex
	guarantee bool
	seen      map[Key]Version
}

func newSession(b backend, cfg core.Config) *Session {
	// A blocking call can legitimately span several recoveries.
	timeout := 4*cfg.OptionTimeout + 4*cfg.RecoveryRetry
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	return &Session{b: b, timeout: timeout}
}

// EnableSessionGuarantees turns on monotonic reads and
// read-your-writes for this session (§4.2). Reads that would go
// backwards (a lagging or recovered local replica) transparently
// escalate to quorum reads and wait for the session's floor version.
func (s *Session) EnableSessionGuarantees() {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	s.guarantee = true
	if s.seen == nil {
		s.seen = make(map[Key]Version)
	}
}

// floor returns the minimum version this session may observe for key.
func (s *Session) floor(key Key) (Version, bool) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if !s.guarantee {
		return 0, false
	}
	return s.seen[key], true
}

// raiseFloor records an observed or self-written version.
func (s *Session) raiseFloor(key Key, ver Version) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if !s.guarantee {
		return
	}
	if ver > s.seen[key] {
		s.seen[key] = ver
	}
}

// Read returns the committed value and version of key from the
// nearest replica (read committed: never an uncommitted option).
// exists is false for absent or deleted records. With session
// guarantees enabled the result never regresses below versions this
// session has already observed or committed.
func (s *Session) Read(key Key) (val Value, ver Version, exists bool, err error) {
	min, on := s.floor(key)
	val, ver, exists, err = s.readLocal(key, min)
	if err != nil {
		return val, ver, exists, err
	}
	if on && ver < min {
		// The local replica lags this session: escalate to quorum
		// reads until the floor is met (visibility is asynchronous, so
		// right after a commit even a quorum can briefly lag).
		deadline := time.Now().Add(s.timeout)
		for ver < min {
			val, ver, exists, err = s.ReadLatest(key)
			if err != nil {
				return val, ver, exists, err
			}
			if ver >= min || time.Now().After(deadline) {
				break
			}
		}
	}
	s.raiseFloor(key, ver)
	return val, ver, exists, err
}

type readRes struct {
	val record.Value
	ver record.Version
	ok  bool
}

// readLocal is the plain nearest-replica (or gateway-materialized)
// read, carrying the session's floor so a gateway backend can meet it
// without a round trip back through the escalation loop.
func (s *Session) readLocal(key Key, floor Version) (val Value, ver Version, exists bool, err error) {
	ch := make(chan readRes, 1)
	s.b.Read(key, floor, func(v record.Value, vr record.Version, ok bool) {
		ch <- readRes{v, vr, ok}
	})
	select {
	case r := <-ch:
		return r.val, r.ver, r.ok, nil
	case <-time.After(s.timeout):
		return Value{}, 0, false, ErrTimeout
	}
}

// ReadLatest performs an up-to-date quorum read (§4.2): it waits for
// a majority of replicas and returns the freshest committed state —
// strictly fresher than a local read after outages or message loss,
// at the cost of a wide-area quorum round trip.
func (s *Session) ReadLatest(key Key) (val Value, ver Version, exists bool, err error) {
	ch := make(chan readRes, 1)
	s.b.ReadQuorum(key, func(v record.Value, vr record.Version, ok bool) {
		ch <- readRes{v, vr, ok}
	})
	select {
	case r := <-ch:
		return r.val, r.ver, r.ok, nil
	case <-time.After(s.timeout):
		return Value{}, 0, false, ErrTimeout
	}
}

// ReadMany reads several keys concurrently. Session floors are passed
// to the backend (a gateway meets them through its fallback ladder)
// and every observed version raises the session's floor, but unlike
// Read there is no per-key quorum-escalation loop on a result that
// still lags its floor — callers needing the full monotonic-read
// deadline semantics per key use Read.
func (s *Session) ReadMany(keys []Key) (vals []Value, vers []Version, exist []bool, err error) {
	vals = make([]Value, len(keys))
	vers = make([]Version, len(keys))
	exist = make([]bool, len(keys))
	done := make(chan int, len(keys))
	for i, k := range keys {
		i := i
		floor, _ := s.floor(k)
		s.b.Read(k, floor, func(v record.Value, vr record.Version, ok bool) {
			vals[i], vers[i], exist[i] = v, vr, ok
			done <- i
		})
	}
	for range keys {
		select {
		case <-done:
		case <-time.After(s.timeout):
			return nil, nil, nil, ErrTimeout
		}
	}
	for i, k := range keys {
		if exist[i] {
			s.raiseFloor(k, vers[i])
		}
	}
	return vals, vers, exist, nil
}

// Commit atomically applies the write-set: either every update
// becomes durable or none does. committed is false when a write-write
// conflict or constraint violation rejected an option — or, for
// gateway sessions, when admission control shed the transaction
// (err == ErrOverloaded). Typed rejection causes accompany
// committed=false when the protocol knows one: ErrMixedUpdateKinds
// for the kind-disjoint rule; plain conflicts keep err nil.
func (s *Session) Commit(updates ...Update) (committed bool, err error) {
	type res struct {
		ok  bool
		err error
	}
	ch := make(chan res, 1)
	s.b.Commit(updates, func(ok bool, cerr error) { ch <- res{ok, cerr} })
	select {
	case r := <-ch:
		if r.err != nil {
			return false, r.err
		}
		if r.ok {
			// Read-your-writes: physical updates produce a known new
			// version (vread+1); commutative deltas do not, so they
			// are not tracked.
			for _, up := range updates {
				if up.Kind == record.KindPhysical {
					s.raiseFloor(up.Key, up.ReadVersion+1)
				}
			}
		}
		return r.ok, nil
	case <-time.After(s.timeout):
		return false, ErrTimeout
	}
}

// Transact runs fn as an optimistic read-modify-write transaction:
// fn assembles a write-set via the TxView, and Commit validates it.
// On conflict it retries up to attempts times (classic OCC loop).
func (s *Session) Transact(attempts int, fn func(tx *TxView) error) (bool, error) {
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		tx := &TxView{s: s}
		if err := tx.err; err != nil {
			return false, err
		}
		if err := fn(tx); err != nil {
			return false, err
		}
		if tx.err != nil {
			return false, tx.err
		}
		ok, err := s.Commit(tx.updates...)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// TransactSerializable is Transact with read-set validation (§4.4):
// every record fn read and did not write gets a ReadCheck, so the
// transaction aborts if anything it based its decisions on changed —
// full optimistic concurrency control, preventing anomalies such as
// write skew that read committed allows.
func (s *Session) TransactSerializable(attempts int, fn func(tx *TxView) error) (bool, error) {
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		tx := &TxView{s: s, reads: make(map[Key]Version)}
		if err := fn(tx); err != nil {
			return false, err
		}
		if tx.err != nil {
			return false, tx.err
		}
		written := make(map[Key]bool, len(tx.updates))
		for _, u := range tx.updates {
			written[u.Key] = true
		}
		updates := tx.updates
		for key, ver := range tx.reads {
			if !written[key] {
				updates = append(updates, ReadCheck(key, ver))
			}
		}
		ok, err := s.Commit(updates...)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// TxView accumulates a write-set with reads tracked for validation.
type TxView struct {
	s       *Session
	updates []Update
	reads   map[Key]Version
	err     error
}

// Read fetches a record inside the transaction.
func (t *TxView) Read(key Key) (Value, Version, bool) {
	v, ver, ok, err := t.s.Read(key)
	if err != nil {
		t.err = err
	}
	if t.reads != nil {
		t.reads[key] = ver
	}
	return v, ver, ok
}

// Write stages a physical update against the version read.
func (t *TxView) Write(key Key, readVersion Version, val Value) {
	t.updates = append(t.updates, Physical(key, readVersion, val))
}

// Insert stages an insert.
func (t *TxView) Insert(key Key, val Value) {
	t.updates = append(t.updates, Insert(key, val))
}

// Delete stages a delete.
func (t *TxView) Delete(key Key, readVersion Version) {
	t.updates = append(t.updates, Delete(key, readVersion))
}

// Add stages a commutative delta.
func (t *TxView) Add(key Key, deltas map[string]int64) {
	t.updates = append(t.updates, Commutative(key, deltas))
}

// Metrics exposes the session backend's protocol counters. For
// gateway sessions, only the outcome counters (Commits, Aborts) are
// populated live — protocol internals belong to the shared pool; see
// GatewayMetrics.
func (s *Session) Metrics() core.CoordMetrics { return s.b.Metrics() }

// GatewayMetrics reports the gateway tier's operational metrics
// (queue depth, coalesce ratio, batch fan-in) when this session is
// attached to one; ok is false for sessions with a private
// coordinator.
func (s *Session) GatewayMetrics() (m GatewayMetrics, ok bool) {
	if s.gwMetrics == nil {
		return GatewayMetrics{}, false
	}
	return s.gwMetrics(), true
}
