package core

import (
	"testing"
	"time"

	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// TestLeaderContention: two nodes both try to lead the same record
// (the fallback-leader scenario); ballots must serialize them and the
// option must be decided exactly once.
func TestLeaderContention(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 700+seed)
		if !w.commit(0, record.Insert("lc/1", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
			t.Fatal("insert failed")
		}
		w.settle()
		// Send the same recovery request to two different would-be
		// leaders simultaneously.
		opt := Option{
			Tx:       "tx-contend",
			Coord:    w.coords[0].ID(),
			Update:   record.Physical("lc/1", 1, record.Value{Attrs: map[string]int64{"x": 7}}),
			WriteSet: []record.Key{"lc/1"},
		}
		var learned []MsgLearned
		w.net.Register(w.coords[0].ID(), func(e transport.Envelope) {
			if m, ok := e.Msg.(MsgLearned); ok {
				learned = append(learned, m)
			}
		})
		l1 := topology.StorageID(topology.USEast, 0)
		l2 := topology.StorageID(topology.APTokyo, 0)
		w.net.Send("test", l1, MsgStartRecovery{Key: "lc/1", Opt: opt, HasOpt: true})
		w.net.Send("test", l2, MsgStartRecovery{Key: "lc/1", Opt: opt, HasOpt: true})
		if !w.net.RunUntil(func() bool { return len(learned) >= 1 }, time.Minute) {
			t.Fatalf("seed %d: contended option never learned", seed)
		}
		w.net.RunFor(5 * time.Second)
		// All Learned notifications must agree.
		first := learned[0].Decision
		for _, m := range learned {
			if m.Decision != first {
				t.Fatalf("seed %d: divergent decisions: %v", seed, learned)
			}
		}
	}
}

// TestRecoverOptUnknownOptionRejected: a recovery query for an option
// no replica has ever seen must come back rejected (so the dangling
// transaction can abort deterministically).
func TestRecoverOptUnknownOptionRejected(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 42)
	if !w.commit(0, record.Insert("ro/1", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	var got []MsgOptDecided
	w.net.Register("prober", func(e transport.Envelope) {
		if m, ok := e.Msg.(MsgOptDecided); ok {
			got = append(got, m)
		}
	})
	leader := topology.StorageID(topology.USWest, 0)
	w.net.Send("prober", leader, MsgRecoverOpt{ReqID: 1, Tx: "ghost-tx", Key: "ro/1"})
	if !w.net.RunUntil(func() bool { return len(got) >= 1 }, time.Minute) {
		t.Fatal("recovery query never answered")
	}
	if got[0].Decision != DecReject {
		t.Fatalf("unknown option decided %v, want reject", got[0].Decision)
	}
	// And the answer is now stable: ask again.
	w.net.Send("prober", leader, MsgRecoverOpt{ReqID: 2, Tx: "ghost-tx", Key: "ro/1"})
	if !w.net.RunUntil(func() bool { return len(got) >= 2 }, time.Minute) {
		t.Fatal("second recovery query never answered")
	}
	if got[1].Decision != DecReject {
		t.Fatal("recovery decision not stable")
	}
}

// TestEnableFastAdvancesBallot: after EnableFast the acceptor must be
// in a fast ballot that outranks the classic one.
func TestEnableFastAdvancesBallot(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	r := n.rs("k")
	classic := paxos.Classic(3, "ldr")
	n.onPhase1a("ldr", MsgPhase1a{Key: "k", Ballot: classic})
	if r.promised.Cmp(classic) != 0 {
		t.Fatalf("promise not taken: %v", r.promised)
	}
	n.onEnableFast(MsgEnableFast{Key: "k", Ballot: classic.NextFast()})
	if !r.promised.Fast {
		t.Fatal("record not back in fast mode")
	}
	if !classic.Less(r.promised) {
		t.Fatal("fast ballot does not outrank the classic one")
	}
	// A stale EnableFast (lower ballot) must be ignored.
	n.onEnableFast(MsgEnableFast{Key: "k", Ballot: paxos.FastBallot(1)})
	if r.promised.Cmp(classic.NextFast()) != 0 {
		t.Fatal("stale EnableFast regressed the ballot")
	}
}

// TestForwardedProposalHint: proposals to a record in a classic
// window are forwarded and the coordinator is told who leads.
func TestForwardedProposalHint(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 43)
	if !w.commit(0, record.Insert("fw/1", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Force the record into a classic window via recovery.
	leader := topology.StorageID(topology.USWest, 0)
	w.net.Send("test", leader, MsgStartRecovery{Key: "fw/1"})
	w.net.RunFor(3 * time.Second)

	// A fast proposal must now be forwarded, not voted.
	var votes []MsgVote
	w.net.Register("watcher", func(e transport.Envelope) {
		if m, ok := e.Msg.(MsgVote); ok {
			votes = append(votes, m)
		}
	})
	opt := Option{
		Tx:       "tx-fw",
		Coord:    "watcher",
		Update:   record.Physical("fw/1", 1, record.Value{Attrs: map[string]int64{"x": 1}}),
		WriteSet: []record.Key{"fw/1"},
	}
	w.net.Send("watcher", topology.StorageID(topology.USEast, 0), MsgProposeFast{Opt: opt})
	if !w.net.RunUntil(func() bool { return len(votes) >= 1 }, time.Minute) {
		t.Fatal("no reply to forwarded proposal")
	}
	if !votes[0].Forwarded || votes[0].Leader == "" {
		t.Fatalf("expected a forwarded hint, got %+v", votes[0])
	}
}

// TestMaxLatencyBoundedUnderConflict: even heavily conflicting
// transactions settle within a few recovery rounds (no livelock).
func TestMaxLatencyBoundedUnderConflict(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 5, 44)
	if !w.commit(0, record.Insert("ml/1", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	start := w.net.Now()
	var results []CommitResult
	for round := 0; round < 3; round++ {
		for ci := 0; ci < 5; ci++ {
			w.commitAsync(ci, &results, record.Physical("ml/1", 1,
				record.Value{Attrs: map[string]int64{"x": int64(round*10 + ci)}}))
		}
	}
	if !w.net.RunUntil(func() bool { return len(results) == 15 }, 2*time.Minute) {
		t.Fatalf("only %d/15 settled", len(results))
	}
	elapsed := w.net.Now().Sub(start)
	if elapsed > 30*time.Second {
		t.Fatalf("conflicting batch took %v — recovery is thrashing", elapsed)
	}
	commits := 0
	for _, r := range results {
		if r.Committed {
			commits++
		}
	}
	if commits > 1 {
		t.Fatalf("%d of 15 same-vread writers committed", commits)
	}
}
