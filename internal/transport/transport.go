// Package transport defines how protocol nodes exchange messages and
// schedule timers, independent of whether the network is the
// discrete-event simulator (internal/simnet), in-process channels with
// injected latency (this package's Local), or real TCP sockets
// (this package's tcp.go).
//
// Concurrency contract: each node's handler and its After callbacks
// are invoked serially, so node state needs no internal locking as
// long as it is only touched from handlers/timers. This matches the
// single-threaded simulator and is enforced with per-node run loops
// in the real-time transports.
package transport

import (
	"time"

	"mdcc/internal/clock"
)

// NodeID names an endpoint ("dc1/store0", "client17", ...).
type NodeID string

// Message is a protocol payload. Concrete message types used over TCP
// must be registered with RegisterMessage.
type Message interface{}

// Envelope is a routed message.
type Envelope struct {
	From NodeID
	To   NodeID
	Msg  Message
}

// Handler consumes messages delivered to one node.
type Handler func(env Envelope)

// Network routes messages between registered nodes and schedules
// timers serialized with a node's handler.
type Network interface {
	// Register installs the handler for a node. Must be called before
	// messages are sent to it. Re-registering replaces the handler.
	Register(id NodeID, h Handler)

	// Send routes msg from one node to another. Delivery is
	// asynchronous, unordered across pairs, and may silently drop
	// (simnet failure injection; closed TCP peers).
	Send(from, to NodeID, msg Message)

	// After schedules f to run on node `on` after d, serialized with
	// that node's handler.
	After(on NodeID, d time.Duration, f func()) clock.Timer

	// Now returns the network's current (possibly virtual) time.
	Now() time.Time
}
