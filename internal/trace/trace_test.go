package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// needBuilt skips tests that require the recorder to actually record
// (a notrace build compiles every hook to a no-op — nothing to test
// beyond that it still builds and is nil-safe).
func needBuilt(t *testing.T) {
	t.Helper()
	if !Built {
		t.Skip("recorder compiled out (notrace build tag)")
	}
}

// TestRingWraparound fills a small ring past capacity and checks the
// snapshot holds exactly the last RingSize events in append order.
func TestRingWraparound(t *testing.T) {
	needBuilt(t)
	rec := New(Config{RingSize: 16})
	r := rec.Ring("n1", 0)
	for i := 0; i < 50; i++ {
		r.Add(Event{Stage: StageVote, Arg: int64(i)})
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot holds %d events, want 16", len(snap))
	}
	for i, ev := range snap {
		if want := int64(50 - 16 + i); ev.Arg != want {
			t.Fatalf("snapshot[%d].Arg = %d, want %d (oldest-first order)", i, ev.Arg, want)
		}
		if ev.Node != "n1" || ev.Seq == 0 {
			t.Fatalf("snapshot[%d] missing stamps: %+v", i, ev)
		}
		if i > 0 && ev.Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot not in Lamport order at %d", i)
		}
	}
}

// TestRingConcurrentAppend hammers one deliberately tiny ring from
// many goroutines so writers constantly lap each other; run under
// -race this proves the striped slot locks make wraparound safe.
func TestRingConcurrentAppend(t *testing.T) {
	needBuilt(t)
	rec := New(Config{RingSize: 32})
	r := rec.Ring("n1", 0)
	const writers, per = 8, 2000
	var wg, rg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(Event{Stage: StageVote, Tx: "t", Arg: int64(w*per + i)})
			}
		}(w)
	}
	rg.Add(1)
	go func() { // concurrent readers must also be clean
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if r.Len() != writers*per {
		t.Fatalf("lost appends: Len = %d, want %d", r.Len(), writers*per)
	}
	snap := r.Snapshot()
	if len(snap) != 32 {
		t.Fatalf("snapshot holds %d events, want 32", len(snap))
	}
}

// TestTailRetention pins the retention predicate: fast commits are
// dropped; slow, aborted, recovered, wrong-shard and unknown-outcome
// transactions are kept with the right reasons.
func TestTailRetention(t *testing.T) {
	needBuilt(t)
	rec := New(Config{SlowThreshold: time.Millisecond, RetainLimit: 8, SlowestN: 2})
	r := rec.Ring("n1", 0)
	at := int64(0)
	run := func(tx string, dur time.Duration, outcome uint8, recovered, rerouted bool) {
		start := at
		r.Add(Event{At: start, Tx: tx, Key: "k", Stage: StagePropose})
		at += int64(dur)
		r.Add(Event{At: at, Tx: tx, Stage: StageCommit, Flags: outcome})
		rec.Complete(tx, []string{"k"}, start, at, outcome, recovered, rerouted, false)
	}
	run("fast1", 100*time.Microsecond, FlagCommit, false, false)
	run("slow1", 5*time.Millisecond, FlagCommit, false, false)
	run("abort1", 200*time.Microsecond, FlagAbort, false, false)
	run("rec1", 300*time.Microsecond, FlagCommit, true, false)
	run("shard1", 250*time.Microsecond, FlagCommit, false, true)
	run("unk1", 150*time.Microsecond, FlagUnknown, false, false)
	run("fast2", 120*time.Microsecond, FlagCommit, false, false)

	want := map[string]string{
		"slow1":  "slow",
		"abort1": "aborted",
		"rec1":   "recovered",
		"shard1": "wrong-shard",
		"unk1":   "unknown",
	}
	got := map[string]*Trace{}
	for _, tr := range rec.Retained() {
		got[tr.Tx] = tr
	}
	if len(got) != len(want) {
		t.Fatalf("retained %d traces, want %d: %v", len(got), len(want), got)
	}
	for tx, reason := range want {
		tr := got[tx]
		if tr == nil {
			t.Fatalf("transaction %s not retained", tx)
		}
		if !tr.hasReason(reason) {
			t.Fatalf("%s retained with reasons %v, want %q", tx, tr.Reasons, reason)
		}
		if len(tr.Events) != 2 {
			t.Fatalf("%s assembled %d events, want 2", tx, len(tr.Events))
		}
	}
	if _, ok := got["fast1"]; ok {
		t.Fatalf("fast commit must not be retained")
	}

	// Slowest-N keeps the two largest durations regardless of retention.
	slow := rec.Slowest()
	if len(slow) != 2 || slow[0].Tx != "slow1" || slow[1].Tx != "rec1" {
		ids := make([]string, len(slow))
		for i, tr := range slow {
			ids[i] = fmt.Sprintf("%s(%s)", tr.Tx, tr.Dur)
		}
		t.Fatalf("slowest = %v, want [slow1 rec1]", ids)
	}
}

// TestTrailingEvents checks the watch mechanism: events recorded after
// a trace is retained (visibility, feed publishes for its keys) are
// appended to it, and the watch expires after its Lamport window.
func TestTrailingEvents(t *testing.T) {
	needBuilt(t)
	rec := New(Config{SlowThreshold: time.Millisecond, RetainLimit: 4, SlowestN: 1})
	r := rec.Ring("n1", 0)
	r.Add(Event{Tx: "a1", Key: "k", Stage: StagePropose})
	rec.Complete("a1", []string{"k"}, 0, int64(100*time.Microsecond), FlagAbort, false, false, false)

	r.Add(Event{Tx: "a1", Key: "k", Stage: StageVisibility}) // by tx
	r.Add(Event{Key: "k", Stage: StageFeedPub})              // tx-less, by key
	r.Add(Event{Key: "other", Stage: StageFeedPub})          // unrelated key
	r.Add(Event{Tx: "zz", Key: "k", Stage: StageVisibility}) // other tx (tx-bearing, no match)

	tr := rec.Retained()[0]
	var stages []string
	for _, ev := range tr.Events {
		stages = append(stages, ev.Stage.String())
	}
	if want := "propose visibility feed-pub"; strings.Join(stages, " ") != want {
		t.Fatalf("trailing capture got %v, want %q", stages, want)
	}

	// Push the Lamport clock past the watch window; the watch must die
	// and later matching events must not be appended.
	for i := 0; i < watchWindow+1; i++ {
		r.Add(Event{Stage: StageRead})
	}
	if n := rec.watchN.Load(); n != 0 {
		t.Fatalf("watch still live after window: %d", n)
	}
	r.Add(Event{Tx: "a1", Stage: StageAck})
	if got := len(rec.Retained()[0].Events); got != 3 {
		t.Fatalf("expired watch still appending: %d events", got)
	}
}

// TestGatewayOwnsCompletion: once a gateway claims the top of the
// stack, coordinator-level completions are ignored so a transaction
// is retained exactly once.
func TestGatewayOwnsCompletion(t *testing.T) {
	needBuilt(t)
	rec := New(Config{SlowThreshold: time.Millisecond})
	r := rec.Ring("gw", 0)
	rec.ClaimTop()
	r.Add(Event{Tx: "t1", Stage: StageAdmit})
	rec.Complete("t1", nil, 0, int64(time.Microsecond), FlagAbort, false, false, false) // coordinator level
	if n := len(rec.Retained()); n != 0 {
		t.Fatalf("coordinator completion retained %d traces despite gateway claim", n)
	}
	rec.Complete("t1", nil, 0, int64(time.Microsecond), FlagAbort, false, false, true) // gateway level
	if n := len(rec.Retained()); n != 1 {
		t.Fatalf("gateway completion retained %d traces, want 1", n)
	}
}

// TestNilRecorderSafe: every entry point must be a no-op on nil.
func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	r := rec.Ring("n", 0)
	r.Add(Event{Stage: StageVote})
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring must record nothing")
	}
	rec.Complete("t", nil, 0, 1, FlagCommit, false, false, false)
	rec.ObservePhase(PhaseQuorum, -1, time.Millisecond)
	if rec.Phases() != nil || rec.Retained() != nil || rec.Slowest() != nil {
		t.Fatal("nil recorder must report nothing")
	}
	if rec.StampSend() != 0 {
		t.Fatal("nil recorder must not stamp")
	}
	rec.ObserveRecv(7)
}

// TestRenderers sanity-checks Compact and Timeline output shape.
func TestRenderers(t *testing.T) {
	needBuilt(t)
	rec := New(Config{SlowThreshold: time.Millisecond})
	r := rec.Ring("us-1", 0)
	r2 := rec.Ring("eu-1", 1)
	r.Add(Event{At: 0, Tx: "t1", Key: "x", Stage: StageAdmit})
	r2.Add(Event{At: int64(300 * time.Microsecond), Tx: "t1", Key: "x", Stage: StageVote, Flags: FlagFast | FlagAccept})
	r.Add(Event{At: int64(900 * time.Microsecond), Tx: "t1", Stage: StageAck, Flags: FlagCommit})
	rec.Complete("t1", []string{"x"}, 0, int64(2*time.Millisecond), FlagCommit, false, false, false)

	tr := rec.Retained()[0]
	c := tr.Compact()
	for _, want := range []string{"tx=t1", "commit", "[slow]", "admit@us-1", "vote@eu-1(dc1,fast-accept)", "ack@us-1"} {
		if !strings.Contains(c, want) {
			t.Fatalf("Compact missing %q:\n%s", want, c)
		}
	}
	tl := tr.Timeline()
	for _, want := range []string{"tx t1: commit in 2ms", "keys [x]", "+300µs", "fast-accept", "dc1"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("Timeline missing %q:\n%s", want, tl)
		}
	}
}

// TestPhaseHistograms checks DC splits and cross-DC merges.
func TestPhaseHistograms(t *testing.T) {
	needBuilt(t)
	rec := New(Config{})
	rec.ObservePhase(PhaseVote, 0, time.Millisecond)
	rec.ObservePhase(PhaseVote, 1, 2*time.Millisecond)
	rec.ObservePhase(PhaseVote, 1, 3*time.Millisecond)
	rec.ObservePhase(PhaseQuorum, -1, 4*time.Millisecond)
	if h := rec.PhaseHistogram(PhaseVote, 1); h == nil || h.N != 2 {
		t.Fatalf("dc1 vote histogram wrong: %+v", h)
	}
	if h := rec.PhaseHistogram(PhaseVote, -1); h == nil || h.N != 3 {
		t.Fatalf("merged vote histogram wrong: %+v", h)
	}
	snaps := rec.Phases()
	if len(snaps) != 3 {
		t.Fatalf("Phases() returned %d snapshots, want 3", len(snaps))
	}
	if snaps[0].Key.String() != "quorum" || snaps[1].Key.String() != "vote[dc0]" || snaps[2].Key.String() != "vote[dc1]" {
		t.Fatalf("snapshot order/keys wrong: %v %v %v", snaps[0].Key, snaps[1].Key, snaps[2].Key)
	}
}
