package simnet

import "container/heap"

// engine is the event queue behind the simulator.
//
// The contract that keeps engines interchangeable per seed: peek
// returns the queued event whose *effective* key — (run time, seq),
// where a busy node's ready events run at the node's free instant —
// is smallest. Seqs are globally unique, so the order is total, and
// for a busy node the effective order among ready events reduces to
// seq order (they all share the node's free instant as run time).
// popHead removes the peeked event. rekeyHead restores order after
// the caller raised the peeked event's atN in place — the legacy
// engine's physical busy-node clamp; the sharded engine instead
// normalizes run times at peek and never needs it. nodeRan tells the
// engine a node's service slot advanced (events earlier than the new
// free instant become "ready"). Any engine honoring this replays the
// exact same schedule — pinned by TestEngineEquivalence.
type engine interface {
	insert(e *event)
	peek() *event
	popHead()
	rekeyHead(e *event)
	nodeRan(nd *simNode)
	len() int
}

// ---- legacy global heap engine ----

// heapEngine is the original single container/heap over every queued
// event. Each push/pop is O(log E_total) with interface boxing and a
// pointer dereference per comparison, and a busy node's backlog is
// re-keyed through the global heap once per service slot — at 1000
// nodes the one shared heap is the simulator's bottleneck. Kept as
// the differential oracle for the determinism tests and the baseline
// for BenchmarkSimnet*.
type heapEngine struct {
	h eventHeap
}

func newHeapEngine() *heapEngine { return &heapEngine{} }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].atN != h[j].atN {
		return h[i].atN < h[j].atN
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) {
	*h = append(*h, x.(*event))
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (g *heapEngine) insert(e *event) { heap.Push(&g.h, e) }

func (g *heapEngine) peek() *event {
	if len(g.h) == 0 {
		return nil
	}
	return g.h[0]
}

func (g *heapEngine) popHead() { heap.Pop(&g.h) }

// rekeyHead is the legacy clamp: the head event's atN was raised to
// the node's free instant; one Fix restores heap order. Equivalent to
// the original pop+push because unique keys make heap layout
// unobservable.
func (g *heapEngine) rekeyHead(e *event) { heap.Fix(&g.h, 0) }

func (g *heapEngine) nodeRan(nd *simNode) {}

func (g *heapEngine) len() int { return len(g.h) }

// ---- sharded engine ----

// nodeEvent is one entry in a node-local queue (or the scheduler
// queue): the ordering key inlined next to the event pointer, so heap
// comparisons touch only the slice being sifted — no pointer chase
// per comparison, no interface boxing.
type nodeEvent struct {
	atN int64
	seq int64
	e   *event
}

// topEntry is a node's presence in the top-level heap: the effective
// key of the node's earliest event, inlined. nd.ready tracks the
// entry's index so key updates are O(log N_nodes) sift-fixes, not
// searches.
type topEntry struct {
	atN int64
	seq int64
	nd  *simNode
}

// shardedEngine shards the event queue per node. Each node keeps a
// future-heap of not-yet-due events keyed (atN, seq) plus a run
// queue of ready events keyed seq alone — events that already waited
// behind the node's service slot and run back-to-back at the node's
// free instant. A small top-level heap orders nodes by the effective
// key of their earliest event. The payoff over the global heap is
// twofold: pushes/pops touch one node-local heap plus the O(nodes)
// top heap instead of one O(E_total) ordering, and a busy node's
// backlog never re-enters any ordering structure — an event migrates
// future→ready once, instead of being re-keyed through the global
// heap on every service slot (the legacy engine's O(backlog) clamp
// round per delivery). Scheduler-level events (At) have no node and
// sit in their own heap; the global head is min(sched, top).
type shardedEngine struct {
	top      []topEntry
	sched    []nodeEvent
	serviceN int64
	count    int
}

func newShardedEngine(serviceN int64) *shardedEngine {
	return &shardedEngine{serviceN: serviceN}
}

func keyLess(a1, s1, a2, s2 int64) bool {
	if a1 != a2 {
		return a1 < a2
	}
	return s1 < s2
}

// busyAt reports whether an event landing at atN on nd would wait
// behind the node's service slot — the same strict comparison as the
// legacy clamp.
func (s *shardedEngine) busyAt(nd *simNode, e *event) bool {
	return e.serialize && s.serviceN > 0 && nd.hasFree && nd.freeAtN > e.atN
}

func (s *shardedEngine) insert(e *event) {
	s.count++
	if e.node == nil {
		s.sched = qPush(s.sched, nodeEvent{e.atN, e.seq, e})
		return
	}
	nd := e.node
	if s.busyAt(nd, e) {
		nd.run = rPush(nd.run, nodeEvent{e.atN, e.seq, e})
	} else {
		nd.q = qPush(nd.q, nodeEvent{e.atN, e.seq, e})
	}
	s.syncTop(nd)
}

// nodeKey computes a node's effective head key: ready events run at
// the node's free instant in seq order; future events at their own
// (atN, seq).
func (s *shardedEngine) nodeKey(nd *simNode) (int64, int64, bool) {
	hasRun, hasQ := len(nd.run) > 0, len(nd.q) > 0
	switch {
	case !hasRun && !hasQ:
		return 0, 0, false
	case !hasRun:
		return nd.q[0].atN, nd.q[0].seq, true
	case !hasQ:
		return nd.freeAtN, nd.run[0].seq, true
	}
	if keyLess(nd.q[0].atN, nd.q[0].seq, nd.freeAtN, nd.run[0].seq) {
		return nd.q[0].atN, nd.q[0].seq, true
	}
	return nd.freeAtN, nd.run[0].seq, true
}

// headIsReady reports whether the node's effective head is its run
// queue (vs future heap). Only valid when the node has events.
func (s *shardedEngine) headIsReady(nd *simNode) bool {
	if len(nd.run) == 0 {
		return false
	}
	if len(nd.q) == 0 {
		return true
	}
	return !keyLess(nd.q[0].atN, nd.q[0].seq, nd.freeAtN, nd.run[0].seq)
}

// schedFirst reports whether the scheduler queue holds the global
// minimum (vs the top-level node heap).
func (s *shardedEngine) schedFirst() bool {
	if len(s.sched) == 0 {
		return false
	}
	if len(s.top) == 0 {
		return true
	}
	return keyLess(s.sched[0].atN, s.sched[0].seq, s.top[0].atN, s.top[0].seq)
}

func (s *shardedEngine) peek() *event {
	if s.schedFirst() {
		return s.sched[0].e
	}
	if len(s.top) == 0 {
		return nil
	}
	nd := s.top[0].nd
	if s.headIsReady(nd) {
		// A ready event's run time IS the node's free instant:
		// normalize atN so the generic step loop sees the effective
		// key and never needs to clamp.
		e := nd.run[0].e
		e.atN = nd.freeAtN
		return e
	}
	return nd.q[0].e
}

func (s *shardedEngine) popHead() {
	s.count--
	if s.schedFirst() {
		s.sched, _ = qPop(s.sched)
		return
	}
	nd := s.top[0].nd
	if s.headIsReady(nd) {
		nd.run, _ = rPop(nd.run)
	} else {
		nd.q, _ = qPop(nd.q)
	}
	s.syncTop(nd)
}

// rekeyHead never fires on the sharded engine: peek normalizes ready
// events' run times, so the generic busy-clamp branch cannot trigger.
func (s *shardedEngine) rekeyHead(e *event) {
	panic("simnet: sharded engine saw a busy-node clamp (ready-queue invariant broken)")
}

// nodeRan migrates events the advanced service slot now blocks:
// future events earlier than the new free instant move to the run
// queue — once per event, ever.
func (s *shardedEngine) nodeRan(nd *simNode) {
	moved := false
	for len(nd.q) > 0 && nd.q[0].atN < nd.freeAtN {
		var e *event
		nd.q, e = qPop(nd.q)
		nd.run = rPush(nd.run, nodeEvent{e.atN, e.seq, e})
		moved = true
	}
	if moved || len(nd.run) > 0 {
		// The run queue's effective key tracks freeAtN, which just
		// advanced — republish even when nothing migrated.
		s.syncTop(nd)
	}
}

func (s *shardedEngine) len() int { return s.count }

// syncTop reconciles a node's top-level entry with its effective head
// key after the node's queues (or free instant) changed.
func (s *shardedEngine) syncTop(nd *simNode) {
	atN, seq, ok := s.nodeKey(nd)
	if !ok {
		if nd.ready >= 0 {
			s.topRemove(nd.ready)
		}
		return
	}
	if nd.ready < 0 {
		s.topPush(topEntry{atN, seq, nd})
		return
	}
	en := &s.top[nd.ready]
	if en.atN == atN && en.seq == seq {
		return
	}
	en.atN, en.seq = atN, seq
	s.topFix(nd.ready)
}

// qPush / qPop are the (atN, seq)-ordered heap primitives —
// hand-rolled binary heaps over inline keys.
func qPush(q []nodeEvent, ev nodeEvent) []nodeEvent {
	q = append(q, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !keyLess(q[i].atN, q[i].seq, q[p].atN, q[p].seq) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	return q
}

func qPop(q []nodeEvent) ([]nodeEvent, *event) {
	e := q[0].e
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nodeEvent{} // drop the *event reference
	q = q[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(q) && keyLess(q[l].atN, q[l].seq, q[m].atN, q[m].seq) {
			m = l
		}
		if r < len(q) && keyLess(q[r].atN, q[r].seq, q[m].atN, q[m].seq) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return q, e
}

// rPush / rPop are the run-queue primitives: a heap ordered by seq
// alone (ready events share one run time, so send order decides).
func rPush(q []nodeEvent, ev nodeEvent) []nodeEvent {
	q = append(q, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[i].seq >= q[p].seq {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	return q
}

func rPop(q []nodeEvent) ([]nodeEvent, *event) {
	e := q[0].e
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nodeEvent{}
	q = q[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(q) && q[l].seq < q[m].seq {
			m = l
		}
		if r < len(q) && q[r].seq < q[m].seq {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return q, e
}

// Top-level heap primitives: an indexed heap, every swap maintaining
// nd.ready back-pointers.
func (s *shardedEngine) topLess(i, j int) bool {
	return keyLess(s.top[i].atN, s.top[i].seq, s.top[j].atN, s.top[j].seq)
}

func (s *shardedEngine) topSwap(i, j int) {
	s.top[i], s.top[j] = s.top[j], s.top[i]
	s.top[i].nd.ready = i
	s.top[j].nd.ready = j
}

func (s *shardedEngine) topUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.topLess(i, p) {
			return
		}
		s.topSwap(i, p)
		i = p
	}
}

// topDown reports whether the entry moved (mirrors container/heap's
// down, whose callers sift up only when down didn't move).
func (s *shardedEngine) topDown(i int) bool {
	start := i
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(s.top) && s.topLess(l, m) {
			m = l
		}
		if r < len(s.top) && s.topLess(r, m) {
			m = r
		}
		if m == i {
			return i > start
		}
		s.topSwap(i, m)
		i = m
	}
}

func (s *shardedEngine) topFix(i int) {
	if !s.topDown(i) {
		s.topUp(i)
	}
}

func (s *shardedEngine) topPush(en topEntry) {
	s.top = append(s.top, en)
	en.nd.ready = len(s.top) - 1
	s.topUp(len(s.top) - 1)
}

func (s *shardedEngine) topRemove(i int) {
	last := len(s.top) - 1
	s.top[i].nd.ready = -1
	if i != last {
		s.top[i] = s.top[last]
		s.top[i].nd.ready = i
	}
	s.top[last] = topEntry{}
	s.top = s.top[:last]
	if i < last {
		s.topFix(i)
	}
}
