package gateway

import (
	"errors"
	"testing"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/record"
)

// A killed gateway surfaces the typed in-process outcome-unknown
// error for every admitted in-flight transaction (its options may be
// proposed and could still commit), ErrClosed for the never-admitted
// backlog, and refuses later submissions.
func TestKillSurfacesOutcomeUnknown(t *testing.T) {
	// A tiny in-flight window forces a backlog so both cohorts exist.
	w := newTestWorld(t, Tuning{MaxInflight: 2, MaxQueue: 64, CoalesceWindow: -1}, nil)
	w.preload("ku/1", record.Value{Attrs: map[string]int64{"x": 0}})

	const n = 6
	errs := make([]error, n)
	got := 0
	for i := 0; i < n; i++ {
		i := i
		w.gw.Commit([]record.Update{record.Commutative("ku/1", map[string]int64{"x": 1})},
			func(ok bool, err error) {
				errs[i] = err
				if ok {
					errs[i] = errors.New("committed after kill")
				}
				got++
			})
	}
	// Kill before the simulator delivers anything: 2 in flight, 4 queued.
	w.gw.Kill()
	if got != n {
		t.Fatalf("kill settled %d of %d ops", got, n)
	}
	unknown, closed := 0, 0
	for _, err := range errs {
		switch {
		case errors.Is(err, ErrOutcomeUnknown):
			unknown++
		case errors.Is(err, ErrClosed):
			closed++
		default:
			t.Fatalf("unexpected settle error: %v", err)
		}
	}
	if unknown != 2 || closed != 4 {
		t.Fatalf("got %d outcome-unknown + %d closed, want 2 + 4", unknown, closed)
	}
	// Post-kill submissions are refused outright.
	var after error
	w.gw.Commit([]record.Update{record.Commutative("ku/1", map[string]int64{"x": 1})},
		func(_ bool, err error) { after = err })
	if !errors.Is(after, ErrClosed) {
		t.Fatalf("post-kill commit error = %v, want ErrClosed", after)
	}
	// Straggling protocol callbacks for the dispatched pair must not
	// re-fire client callbacks (exactly-once via the pending map).
	w.net.RunFor(5 * time.Second)
	if got != n {
		t.Fatalf("late protocol callbacks re-settled ops: %d fires", got)
	}
}

// The headroom-share divisor adapts to observed contention: with the
// acceptor reporting a single contending gateway group, a lone
// gateway may hold the full snapshot headroom slice (divisor 1); a
// report of heavier contention restores the static divisor.
func TestAdaptiveHeadroomShare(t *testing.T) {
	cons := []record.Constraint{record.MinBound("units", 0)}
	w := newTestWorld(t, Tuning{HeadroomShare: 5, CoalesceWindow: -1}, cons)

	g := w.gw
	mkSnap := func(contenders int) core.EscrowSnap {
		return core.EscrowSnap{
			Valid:   true,
			Version: 1,
			Attrs:   []core.AttrEscrow{{Attr: "units", Base: 1000}},
			// Demarcation low for base 1000, min 0, N=5/QF=4: L=200,
			// headroom 800. Static share 5 → slice 160; adaptive with
			// one contender → the full 800.
			Contenders: contenders,
		}
	}
	g.mu.Lock()
	ks := g.ks("ah/1")
	g.foldEscrowLocked(ks, mkSnap(1), g.net.Now())
	fits := func(d int64) bool {
		return g.fitsLocked(ks, record.Commutative("ah/1", map[string]int64{"units": d}))
	}
	if !fits(-500) {
		g.mu.Unlock()
		t.Fatal("lone gateway denied headroom beyond the static 1/5 slice")
	}
	if fits(-801) {
		g.mu.Unlock()
		t.Fatal("adaptive share exceeded the snapshot headroom itself")
	}
	// Heavier observed contention (same version, fresh) restores the
	// static divisor: the slice shrinks back to 800/5 = 160.
	g.foldEscrowLocked(ks, mkSnap(5), g.net.Now())
	if fits(-500) {
		g.mu.Unlock()
		t.Fatal("contended key still granted the lone-gateway slice")
	}
	if !fits(-100) {
		g.mu.Unlock()
		t.Fatal("contended key denied its 1/5 slice")
	}
	g.mu.Unlock()

	// End to end: a real vote-piggybacked snapshot reports this
	// gateway as the only contender, so a second constrained delta
	// merges instead of bypassing (static share would allow it too at
	// this scale; the assertion here is that adaptation never blocks
	// below the static slice).
	w.preload("ah/2", record.Value{Attrs: map[string]int64{"units": 1000}})
	done := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		w.gw.Commit([]record.Update{record.Commutative("ah/2", map[string]int64{"units": -1})},
			func(ok bool, err error) { done <- ok && err == nil })
	}
	okAll := true
	w.net.RunUntil(func() bool { return len(done) == 2 }, time.Minute)
	for i := 0; i < 2; i++ {
		if !<-done {
			okAll = false
		}
	}
	if !okAll {
		t.Fatal("constrained decrements failed under adaptive share")
	}
	if m := w.gw.Metrics(); m.EscrowUpdates == 0 {
		t.Fatal("no escrow snapshots folded — contender plumbing untested")
	}
}
