// Package megastore implements Megastore*, the paper's own simulation
// of Megastore's replication protocol (§5.2): a single entity group
// whose commits are Multi-Paxos-agreed log positions, one transaction
// per position, serialized by a master (placed in US-West, in
// Megastore's favor). Per the paper it includes the Paxos-CP
// improvement of letting non-conflicting transactions move on to a
// subsequent log position instead of aborting; conflicting
// transactions (stale read versions) abort. The single serialized log
// is exactly the scalability bottleneck the evaluation demonstrates:
// under load, transactions queue at the master for whole log
// positions and response times explode.
package megastore

import (
	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// TxID names a Megastore* transaction.
type TxID string

// MsgTxReq submits a transaction to the master.
type MsgTxReq struct {
	Tx      TxID
	Client  transport.NodeID
	Updates []record.Update
}

// MsgTxResp reports the outcome to the client.
type MsgTxResp struct {
	Tx        TxID
	Committed bool
}

// MsgAccept replicates one log entry (Multi-Paxos Phase 2; the master
// holds the mastership lease, so Phase 1 is skipped).
type MsgAccept struct {
	Pos     uint64
	Tx      TxID
	Updates []record.Update
}

// MsgAccepted acknowledges a log entry.
type MsgAccepted struct {
	Pos uint64
}

// MsgApply tells replicas a position is chosen (asynchronous).
type MsgApply struct {
	Pos uint64
}

// MsgRead / MsgReadReply serve local reads (read-committed, the
// paper's relaxation for a fair comparison).
type MsgRead struct {
	ReqID uint64
	Key   record.Key
}

// MsgReadReply answers MsgRead.
type MsgReadReply struct {
	ReqID   uint64
	Key     record.Key
	Value   record.Value
	Version record.Version
	Exists  bool
}

func init() {
	transport.RegisterMessage(MsgTxReq{})
	transport.RegisterMessage(MsgTxResp{})
	transport.RegisterMessage(MsgAccept{})
	transport.RegisterMessage(MsgAccepted{})
	transport.RegisterMessage(MsgApply{})
	transport.RegisterMessage(MsgRead{})
	transport.RegisterMessage(MsgReadReply{})
}

// logEntry is one replicated position.
type logEntry struct {
	tx      TxID
	updates []record.Update
}

// Replica is a Megastore* log replica (one per data center). It
// appends accepted entries and applies them in order. The US-West
// replica additionally hosts the master (same transport node, so all
// master state shares the replica's serialized handler context).
type Replica struct {
	id      transport.NodeID
	net     transport.Network
	store   *kv.Store
	log     map[uint64]logEntry
	chosen  map[uint64]bool
	applied uint64 // all positions <= applied are in the store
	master  *Master
}

// NewReplica builds and registers a log replica.
func NewReplica(id transport.NodeID, net transport.Network, store *kv.Store) *Replica {
	r := &Replica{
		id: id, net: net, store: store,
		log:    make(map[uint64]logEntry),
		chosen: make(map[uint64]bool),
	}
	net.Register(id, r.handle)
	return r
}

// ID returns the replica identity.
func (r *Replica) ID() transport.NodeID { return r.id }

// Store exposes the replica's store.
func (r *Replica) Store() *kv.Store { return r.store }

func (r *Replica) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case MsgAccept:
		r.log[m.Pos] = logEntry{tx: m.Tx, updates: m.Updates}
		r.net.Send(r.id, env.From, MsgAccepted{Pos: m.Pos})
	case MsgApply:
		r.chosen[m.Pos] = true
		r.applyReady()
	case MsgRead:
		val, ver, ok := r.store.Get(m.Key)
		r.net.Send(r.id, env.From, MsgReadReply{
			ReqID: m.ReqID, Key: m.Key, Value: val, Version: ver,
			Exists: ok && !val.Tombstone,
		})
	case MsgTxReq:
		if r.master != nil {
			r.master.queue = append(r.master.queue, m)
			r.master.pump()
		}
	case MsgAccepted:
		if r.master != nil {
			r.master.onAccepted(m)
		}
	}
}

// applyReady applies chosen positions strictly in order.
func (r *Replica) applyReady() {
	for {
		next := r.applied + 1
		if !r.chosen[next] {
			return
		}
		e, ok := r.log[next]
		if !ok {
			return // hole: wait for the accept to arrive
		}
		for _, up := range e.updates {
			cur, ver, _ := r.store.Get(up.Key)
			switch up.Kind {
			case record.KindPhysical:
				_ = r.store.Put(up.Key, up.NewValue, ver+1)
			case record.KindCommutative:
				_ = r.store.Put(up.Key, up.Apply(cur), ver+1)
			}
		}
		delete(r.log, next)
		delete(r.chosen, next)
		r.applied = next
	}
}

// Master serializes the entity group's commit log. It validates each
// transaction against the applied state (stale read versions abort),
// assigns it the next log position, replicates to a majority of the
// five replicas, applies, and answers the client. One position at a
// time — the queue is the point.
type Master struct {
	id      transport.NodeID
	net     transport.Network
	cl      *topology.Cluster
	replica *Replica // co-located replica applies entries locally
	quorum  int

	queue   []MsgTxReq
	busy    bool
	nextPos uint64
	acks    map[uint64]int
	inPos   map[uint64]MsgTxReq

	nCommits, nAborts int64
}

// ReplicaIDFor names the log replica in a DC.
func ReplicaIDFor(dc topology.DC) transport.NodeID {
	return transport.NodeID("megastore/" + dc.String())
}

// MasterID is the master's identity: it is co-located with the
// US-West replica per the paper's setup ("we play in favor of
// Megastore* placing all clients and masters in one data center"),
// sharing its transport node.
func MasterID() transport.NodeID { return ReplicaIDFor(topology.USWest) }

// NewMaster attaches the master role to its co-located US-West
// replica (same transport node and handler context).
func NewMaster(net transport.Network, cl *topology.Cluster, replica *Replica) *Master {
	m := &Master{
		id:      replica.id,
		net:     net,
		cl:      cl,
		replica: replica,
		quorum:  cl.ReplicationFactor()/2 + 1,
		acks:    make(map[uint64]int),
		inPos:   make(map[uint64]MsgTxReq),
	}
	replica.master = m
	return m
}

// pump starts replicating the next queued transaction if the log is
// idle. Conflict validation happens at dequeue time against the
// applied state: a stale read version aborts immediately (Megastore
// would abort every concurrent transaction; Paxos-CP lets the
// non-conflicting ones proceed to the next position, which is what
// the queue models).
func (m *Master) pump() {
	for !m.busy && len(m.queue) > 0 {
		req := m.queue[0]
		m.queue = m.queue[1:]
		if !m.validate(req.Updates) {
			m.nAborts++
			m.net.Send(m.id, req.Client, MsgTxResp{Tx: req.Tx, Committed: false})
			continue
		}
		m.busy = true
		m.nextPos++
		pos := m.nextPos
		m.inPos[pos] = req
		m.acks[pos] = 0
		for _, dc := range topology.AllDCs() {
			m.net.Send(m.id, ReplicaIDFor(dc), MsgAccept{Pos: pos, Tx: req.Tx, Updates: req.Updates})
		}
	}
}

func (m *Master) validate(updates []record.Update) bool {
	for _, up := range updates {
		_, ver, _ := m.replica.store.Get(up.Key)
		if up.Kind == record.KindPhysical && up.ReadVersion != ver {
			return false
		}
	}
	return true
}

func (m *Master) onAccepted(msg MsgAccepted) {
	req, ok := m.inPos[msg.Pos]
	if !ok {
		return
	}
	m.acks[msg.Pos]++
	if m.acks[msg.Pos] < m.quorum {
		return
	}
	delete(m.inPos, msg.Pos)
	delete(m.acks, msg.Pos)
	// Chosen: apply locally right away (the next queued transaction
	// must validate against this position's effects) and tell the
	// remote replicas asynchronously.
	m.replica.chosen[msg.Pos] = true
	m.replica.applyReady()
	for _, dc := range topology.AllDCs() {
		if dc != topology.USWest {
			m.net.Send(m.id, ReplicaIDFor(dc), MsgApply{Pos: msg.Pos})
		}
	}
	m.nCommits++
	m.net.Send(m.id, req.Client, MsgTxResp{Tx: req.Tx, Committed: true})
	m.busy = false
	m.pump()
}

// Metrics reports commit/abort counts at the master.
func (m *Master) Metrics() (commits, aborts int64) { return m.nCommits, m.nAborts }

// Client is the Megastore* client library: reads go to the local
// replica, commits to the (single) master.
type Client struct {
	id  transport.NodeID
	dc  topology.DC
	net transport.Network
	cl  *topology.Cluster

	txSeq  uint64
	reqSeq uint64
	txs    map[TxID]func(bool)
	reads  map[uint64]func(record.Value, record.Version, bool)
}

// NewClient builds a Megastore* client.
func NewClient(id transport.NodeID, dc topology.DC, net transport.Network, cl *topology.Cluster) *Client {
	c := &Client{
		id: id, dc: dc, net: net, cl: cl,
		txs:   make(map[TxID]func(bool)),
		reads: make(map[uint64]func(record.Value, record.Version, bool)),
	}
	net.Register(id, c.handle)
	return c
}

func (c *Client) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case MsgTxResp:
		if done, ok := c.txs[m.Tx]; ok {
			delete(c.txs, m.Tx)
			done(m.Committed)
		}
	case MsgReadReply:
		if cb, ok := c.reads[m.ReqID]; ok {
			delete(c.reads, m.ReqID)
			cb(m.Value, m.Version, m.Exists)
		}
	}
}

// Read reads the local log replica.
func (c *Client) Read(key record.Key, cb func(record.Value, record.Version, bool)) {
	c.reqSeq++
	c.reads[c.reqSeq] = cb
	c.net.Send(c.id, ReplicaIDFor(c.dc), MsgRead{ReqID: c.reqSeq, Key: key})
}

// Commit submits the write-set to the master.
func (c *Client) Commit(updates []record.Update, done func(bool)) {
	c.txSeq++
	tx := TxID(string(c.id) + "#ms#" + itoa(c.txSeq))
	if len(updates) == 0 {
		done(true)
		return
	}
	c.txs[tx] = done
	c.net.Send(c.id, MasterID(), MsgTxReq{Tx: tx, Client: c.id, Updates: updates})
}

// SupportsCommutative: the master serializes everything, so deltas
// apply trivially.
func (c *Client) SupportsCommutative() bool { return true }

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
