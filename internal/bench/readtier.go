package bench

import (
	"time"

	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/stats"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// Read-mostly benchmark: the dominant access pattern of real
// deployments (a 90/10 read/write mix, realized as a 90/10 split of
// closed-loop reader and writer sessions) driven twice through the
// same gateway deployment — once with reads as per-key RPC round
// trips to the DC-local replica (the pre-tier behavior, the baseline
// arm) and once through the learned-replica read tier (reads served
// from the gateway's feed-materialized memory). Storage nodes carry the same
// per-message service time as the saturation bench, so the baseline's
// read RPCs compete with the write path for acceptor CPU and the
// comparison measures exactly what the tier buys: reads per second,
// read latency, and read RPCs that vanish from the wire.
//
// Both arms model the client⇄gateway hop identically (one intra-DC
// round trip per read, added to the measured latency and to the
// closed-loop pacing), so the arms differ only in what happens behind
// the gateway.

// ReadRun is one read-mostly arm's harvest.
type ReadRun struct {
	Mode     string `json:"mode"` // "rpc-reads" | "read-tier"
	Sessions int    `json:"sessions"`

	Reads       int64   `json:"reads"` // consumed in the measure window
	ReadsPerSec float64 `json:"readsPerSec"`
	ReadP50Ms   float64 `json:"readP50Ms"`
	ReadP99Ms   float64 `json:"readP99Ms"`

	WriteCommits int64   `json:"writeCommits"`
	WriteAborts  int64   `json:"writeAborts"`
	WriteTPS     float64 `json:"writeTPS"`

	// Steady-state read traffic inside the measure window
	// (counter-verified): RPC reads dispatched behind the gateway,
	// normalized per consumed read, plus the cross-DC read messages
	// (retry rotations to other DCs and the non-local legs of quorum
	// escalations).
	SteadyReadRPCs        int64   `json:"steadyReadRPCs"`
	SteadyReadRPCsPerRead float64 `json:"steadyReadRPCsPerRead"`
	CrossDCReadMsgs       int64   `json:"crossDCReadMsgs"`

	// AcceptorMsgs counts physical envelopes delivered to storage
	// nodes over the whole run (reads compete with writes for the
	// same acceptor service time).
	AcceptorMsgs int64 `json:"acceptorMsgs"`

	Gateway *gateway.Metrics `json:"gateway,omitempty"`
}

// ReadComparison is the read-mostly benchmark result, embedded in
// BENCH_gateway.json.
type ReadComparison struct {
	Sessions    int     `json:"sessions"`
	ReadFrac    float64 `json:"readFrac"`
	Measure     string  `json:"measure"`
	Baseline    ReadRun `json:"baseline"`
	Tier        ReadRun `json:"tier"`
	SpeedupRead float64 `json:"speedupReads"` // tier reads/s ÷ baseline reads/s
}

// ReadMostly runs both read arms and compares.
func ReadMostly(seed int64, sc GatewayScale) *ReadComparison {
	base := runReadArm(seed, sc, false)
	tier := runReadArm(seed, sc, true)
	cmp := &ReadComparison{
		Sessions: sc.Sessions,
		ReadFrac: sc.ReadFrac,
		Measure:  sc.ReadMeasure.String(),
		Baseline: base,
		Tier:     tier,
	}
	if base.ReadsPerSec > 0 {
		cmp.SpeedupRead = tier.ReadsPerSec / base.ReadsPerSec
	}
	return cmp
}

func runReadArm(seed int64, sc GatewayScale, tier bool) ReadRun {
	cl := topology.NewCluster(topology.Layout{
		NodesPerDC: sc.NodesPerDC,
		Clients:    sc.Sessions,
		ClientDC:   -1,
	})
	tun := gateway.Tuning{MaxInflight: 1 << 16, MaxQueue: 1 << 16, DisableReadTier: !tier}
	extra := map[transport.NodeID]topology.DC{}
	for _, dc := range topology.AllDCs() {
		for _, id := range gateway.NodeIDs(dc, tun) {
			extra[id] = dc
		}
	}
	net := simnet.New(simnet.Options{
		Latency:     cl.LatencyWith(extra),
		JitterFrac:  0.10,
		ServiceTime: sc.ServiceTime,
		Seed:        seed,
	})
	cfg := core.Defaults(core.ModeMDCC)
	cfg.Constraints = []record.Constraint{record.MinBound("units", 0)}
	cfg.OptionTimeout = 10 * time.Second
	cfg.RecoveryRetry = 5 * time.Second
	cfg.PendingTimeout = 30 * time.Second

	stores := make([]*kv.Store, 0, len(cl.Storage))
	for _, n := range cl.Storage {
		store := kv.NewMemory()
		stores = append(stores, store)
		core.NewStorageNode(n.ID, n.DC, net, cl, cfg, store)
	}
	for i := 0; i < sc.HotKeys; i++ {
		key := hotKey(i)
		shard := cl.Shard(key)
		for j, n := range cl.Storage {
			if n.Index == shard {
				_ = stores[j].Put(key, record.Value{Attrs: map[string]int64{"units": sc.InitialStock}}, 1)
			}
		}
	}
	gws := make(map[topology.DC]*gateway.Gateway)
	for _, dc := range topology.AllDCs() {
		gws[dc] = gateway.New(dc, net, cl, cfg, tun)
	}

	res := ReadRun{Mode: "rpc-reads", Sessions: sc.Sessions}
	if tier {
		res.Mode = "read-tier"
	}
	rng := net.Rand()
	start := net.Now()
	measureFrom := start.Add(sc.ReadWarmup)
	measureTo := measureFrom.Add(sc.ReadMeasure)
	lat := stats.NewSample(1 << 16)
	// The client⇄gateway hop, identical for both arms: one intra-DC
	// round trip per read, paid in latency and in closed-loop pacing.
	hop := topology.OneWay(topology.USWest, topology.USWest)

	// Steady-state counters: snapshot at the measure boundary, so the
	// warmup's cold-miss fills don't count against the steady state.
	var gwAtWarm gateway.Metrics
	var coordAtWarm core.CoordMetrics
	sumGw := func() gateway.Metrics {
		var m gateway.Metrics
		for _, dc := range topology.AllDCs() {
			m.Add(gws[dc].Metrics())
		}
		return m
	}
	sumCoord := func() core.CoordMetrics {
		var m core.CoordMetrics
		for _, dc := range topology.AllDCs() {
			m.Add(gws[dc].CoordMetrics())
		}
		return m
	}
	net.At(sc.ReadWarmup, func() {
		gwAtWarm = sumGw()
		coordAtWarm = sumCoord()
	})

	// The ReadFrac mix is a session split — ReadFrac of the sessions
	// are closed-loop readers, the rest closed-loop writers — so read
	// throughput is not artificially clamped by write latency inside
	// one loop (a mixed closed loop spends ~all its cycle time waiting
	// on commits, measuring the write path twice and the read path not
	// at all). The aggregate offered mix is the same 90/10.
	readers := int(float64(sc.Sessions) * sc.ReadFrac)
	for ci, c := range cl.Clients {
		g := gws[c.DC]
		ci := ci
		if ci < readers {
			var loop func()
			loop = func() {
				now := net.Now()
				if !now.Before(measureTo) {
					return
				}
				key := hotKey(rng.Intn(sc.HotKeys))
				began := now
				g.ReadFloor(key, 0, func(record.Value, record.Version, bool) {
					// Response hop back to the client, then the next op.
					net.After(cl.Clients[ci].ID, 2*hop, func() {
						end := net.Now()
						if !end.Before(measureFrom) && end.Before(measureTo) {
							res.Reads++
							lat.Add(float64(end.Sub(began)) / float64(time.Millisecond))
						}
						loop()
					})
				})
			}
			net.At(0, loop)
			continue
		}
		var loop func()
		loop = func() {
			if !net.Now().Before(measureTo) {
				return
			}
			key := hotKey(rng.Intn(sc.HotKeys))
			g.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -1})},
				func(ok bool, err error) {
					end := net.Now()
					if !end.Before(measureFrom) && end.Before(measureTo) {
						if ok && err == nil {
							res.WriteCommits++
						} else {
							res.WriteAborts++
						}
					}
					loop()
				})
		}
		net.At(0, loop)
	}
	net.RunFor(sc.ReadWarmup + sc.ReadMeasure + 10*time.Second)

	if secs := sc.ReadMeasure.Seconds(); secs > 0 {
		res.ReadsPerSec = float64(res.Reads) / secs
		res.WriteTPS = float64(res.WriteCommits) / secs
	}
	res.ReadP50Ms = lat.Percentile(50)
	res.ReadP99Ms = lat.Percentile(99)
	for _, n := range cl.Storage {
		res.AcceptorMsgs += net.DeliveredTo(n.ID)
	}
	gwEnd := sumGw()
	coordEnd := sumCoord()
	if tier {
		res.SteadyReadRPCs = (gwEnd.ReadRPCs - gwAtWarm.ReadRPCs) + (gwEnd.ReadQuorums - gwAtWarm.ReadQuorums)
	} else {
		// Baseline reads are one RPC each by construction; retries and
		// quorum escalations come on top (counted below).
		res.SteadyReadRPCs = res.Reads
	}
	res.CrossDCReadMsgs = (coordEnd.ReadRetries - coordAtWarm.ReadRetries) +
		4*(gwEnd.ReadQuorums-gwAtWarm.ReadQuorums)
	if res.Reads > 0 {
		res.SteadyReadRPCsPerRead = float64(res.SteadyReadRPCs) / float64(res.Reads)
	}
	agg := gwEnd
	agg.Finalize()
	res.Gateway = &agg
	return res
}
