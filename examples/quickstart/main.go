// Quickstart: start an in-process five-data-center MDCC cluster,
// write and read a record, demonstrate conflict detection, and show
// a one-round-trip commutative decrement.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mdcc"
)

func main() {
	// Five data centers, one storage node each, WAN latencies
	// compressed 20x so the demo is snappy but geography still shows.
	cluster, err := mdcc.StartCluster(mdcc.ClusterConfig{
		Mode:         mdcc.ModeMDCC,
		NodesPerDC:   1,
		LatencyScale: 0.05,
		Constraints:  []mdcc.Constraint{mdcc.MinBound("stock", 0)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Sessions are the paper's "DB library": stateless app-server
	// clients that can live in any data center.
	west := cluster.Session(mdcc.USWest)
	tokyo := cluster.Session(mdcc.APTokyo)

	// 1. Insert the product row and its stock counter. Keys are
	// kind-disjoint by design: "item/42" lives under physical
	// read-modify-writes, "stock/42" under commutative deltas (the
	// acceptors enforce this split — see step 5).
	start := time.Now()
	ok, err := west.Commit(
		mdcc.Insert("item/42", mdcc.Value{Attrs: map[string]int64{"price": 1999}}),
		mdcc.Insert("stock/42", mdcc.Value{Attrs: map[string]int64{"stock": 10}}),
	)
	must(err)
	fmt.Printf("insert committed=%v in %v (one wide-area round trip)\n", ok, time.Since(start))

	// 2. Read it back from the other side of the planet — reads are
	// local to the session's data center (read committed).
	waitVisible(tokyo, "item/42")
	val, ver, _, err := tokyo.Read("item/42")
	must(err)
	fmt.Printf("tokyo reads %s at version %d\n", val, ver)

	// 3. Conflicting physical updates: the second writer aborts (no
	// lost updates).
	okA, _ := west.Commit(mdcc.Physical("item/42", ver, val.WithAttr("price", 1500)))
	okB, _ := tokyo.Commit(mdcc.Physical("item/42", ver, val.WithAttr("price", 2500)))
	fmt.Printf("conflicting writers: west=%v tokyo=%v (at most one wins)\n", okA, okB)

	// 4. Commutative decrements commute — no conflict, still one
	// round trip, constraint enforced by quorum demarcation.
	start = time.Now()
	ok1, _ := west.Commit(mdcc.Commutative("stock/42", map[string]int64{"stock": -1}))
	ok2, _ := tokyo.Commit(mdcc.Commutative("stock/42", map[string]int64{"stock": -1}))
	fmt.Printf("concurrent decrements: west=%v tokyo=%v in %v\n", ok1, ok2, time.Since(start))

	// 5. The kind-disjoint rule is enforced with a typed error: a
	// commutative delta on the physically rewritten item row is
	// rejected by the acceptors (mixing kinds would make replica
	// forks unmergeable — DESIGN.md §5).
	ok3, err3 := west.Commit(mdcc.Commutative("item/42", map[string]int64{"price": -100}))
	fmt.Printf("delta on a physical key: committed=%v err=%v\n", ok3, err3)

	waitStock(west, "stock/42", 8)
	val, _, _, _ = west.Read("stock/42")
	fmt.Printf("final stock: %s\n", val)
}

// waitVisible polls until asynchronous visibility reaches the local
// replica (MDCC is read committed, not read-your-writes).
func waitVisible(s *mdcc.Session, key mdcc.Key) {
	for i := 0; i < 200; i++ {
		if _, _, ok, _ := s.Read(key); ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitStock(s *mdcc.Session, key mdcc.Key, want int64) {
	for i := 0; i < 200; i++ {
		if v, _, ok, _ := s.Read(key); ok && v.Attr("stock") == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
