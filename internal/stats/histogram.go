package stats

import (
	"fmt"
	"math/bits"
)

// Histogram is a mergeable HDR-style log-bucketed histogram of
// non-negative int64 values. Values below 2^SubBits land in exact unit
// buckets; above that, each power-of-two major bucket is split into
// 2^SubBits sub-buckets, so the recorded value is always within a
// relative error of 1/2^SubBits of the true one (quantiles quote the
// bucket's upper edge, so they never under-report). Unlike Sample it
// never saturates or subsamples: every Add lands in a fixed bucket
// array, which is what makes two histograms of the same geometry
// mergeable by plain count addition (associative and commutative — the
// property phase latencies need to aggregate across nodes and DCs).
//
// All fields are exported so the zero-config gob codec round-trips it
// (scenario reports and /metrics snapshots ship histograms whole).
// Not safe for concurrent use; wrap with a lock where writers race.
type Histogram struct {
	SubBits uint
	Counts  []int64
	N       int64
	Sum     int64
	Min     int64 // valid when N > 0
	Max     int64
}

// DefaultSubBits keeps relative quantile error ≤ 1/32 ≈ 3.1%.
const DefaultSubBits = 5

// NewHistogram returns an empty histogram with 2^subBits sub-buckets
// per power-of-two range (subBits 0 means DefaultSubBits).
func NewHistogram(subBits uint) *Histogram {
	if subBits == 0 {
		subBits = DefaultSubBits
	}
	if subBits > 12 {
		subBits = 12
	}
	// One unit region plus one 2^subBits-wide region per major bucket
	// up to exponent 62 (int64 range).
	n := (64 - int(subBits)) << subBits
	return &Histogram{SubBits: subBits, Counts: make([]int64, n)}
}

// bucket maps a value to its bucket index.
func (h *Histogram) bucket(v int64) int {
	if v < 0 {
		v = 0
	}
	sub := h.SubBits
	if v < int64(1)<<sub {
		return int(v)
	}
	exp := uint(bits.Len64(uint64(v))) - 1
	i := int(exp-sub)<<sub + int(v>>(exp-sub))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// bucketHigh returns the largest value mapping to bucket i (the upper
// edge quantiles quote).
func (h *Histogram) bucketHigh(i int) int64 {
	sub := h.SubBits
	if i < 1<<sub {
		return int64(i)
	}
	exp := uint(i>>sub) - 1 + sub
	m := int64(i) - int64(exp-sub)<<sub // in [2^sub, 2^(sub+1))
	return (m+1)<<(exp-sub) - 1
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Counts[h.bucket(v)]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Merge adds o's population into h. Both histograms must share the
// same geometry (SubBits); merging is associative and commutative.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.N == 0 {
		return nil
	}
	if o.SubBits != h.SubBits || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging histograms of different geometry (subBits %d/%d)", h.SubBits, o.SubBits)
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.N += o.N
	h.Sum += o.Sum
	return nil
}

// Quantile returns the value at quantile q in [0, 1] (upper bucket
// edge, so the result is ≥ the true order statistic and within the
// geometry's relative error of it). Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.N) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			high := h.bucketHigh(i)
			if high > h.Max {
				high = h.Max
			}
			if high < h.Min {
				high = h.Min
			}
			return high
		}
	}
	return h.Max
}

// Mean returns the arithmetic mean of the recorded values (exact, from
// the running sum — not bucketized).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Counts = append([]int64(nil), h.Counts...)
	return &c
}
