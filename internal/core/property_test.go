package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
)

// Property tests: run randomized workloads over randomized network
// schedules (jitter, message drops, node crashes) and assert the
// protocol invariants from DESIGN.md §5 — constraint safety, no lost
// updates, replica convergence, atomic durability.

type propWorld struct {
	net    *simnet.Net
	cl     *topology.Cluster
	nodes  []*StorageNode
	coords []*Coordinator
}

func newPropWorld(cfg Config, clients int, seed int64, dropProb float64) *propWorld {
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: clients, ClientDC: -1})
	net := simnet.New(simnet.Options{
		Latency:     cl.Latency(),
		JitterFrac:  0.15,
		ServiceTime: 100 * time.Microsecond,
		DropProb:    dropProb,
		Seed:        seed,
	})
	w := &propWorld{net: net, cl: cl}
	for _, n := range cl.Storage {
		w.nodes = append(w.nodes, NewStorageNode(n.ID, n.DC, net, cl, cfg, kv.NewMemory()))
	}
	for _, c := range cl.Clients {
		w.coords = append(w.coords, NewCoordinator(c.ID, c.DC, net, cl, cfg))
	}
	return w
}

// TestPropertyConstraintUnderChaos: with demarcation enabled, no
// schedule of commutative decrements — including message drops — may
// drive the committed stock below the bound.
func TestPropertyConstraintUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property test skipped in -short")
	}
	for seed := int64(0); seed < 12; seed++ {
		cfg := Defaults(ModeMDCC)
		cfg.PendingTimeout = 2 * time.Second
		cfg.Constraints = []record.Constraint{record.MinBound("stock", 0)}
		drop := 0.0
		if seed%3 == 1 {
			drop = 0.02
		}
		w := newPropWorld(cfg, 5, 1000+seed, drop)
		rng := rand.New(rand.NewSource(seed))

		const initial = 25
		var setup *CommitResult
		w.coords[0].Commit([]record.Update{
			record.Insert("p/stock", record.Value{Attrs: map[string]int64{"stock": initial}}),
		}, func(r CommitResult) { setup = &r })
		if !w.net.RunUntil(func() bool { return setup != nil }, time.Minute) || !setup.Committed {
			t.Fatalf("seed %d: setup failed", seed)
		}
		w.net.RunFor(3 * time.Second)

		// 40 decrements of 1..3, issued in random bursts.
		total := 0
		committedDelta := int64(0)
		results := 0
		launch := func(ci int, amt int64) {
			w.coords[ci].Commit([]record.Update{
				record.Commutative("p/stock", map[string]int64{"stock": -amt}),
			}, func(r CommitResult) {
				results++
				if r.Committed {
					committedDelta += amt
				}
			})
		}
		for total < 40 {
			burst := 1 + rng.Intn(5)
			for b := 0; b < burst && total < 40; b++ {
				amt := int64(1 + rng.Intn(3))
				ci := rng.Intn(5)
				total++
				at := time.Duration(rng.Intn(4000)) * time.Millisecond
				a, c := amt, ci
				w.net.At(3*time.Second+at, func() { launch(c, a) })
			}
		}
		if !w.net.RunUntil(func() bool { return results == total }, 5*time.Minute) {
			t.Fatalf("seed %d: only %d/%d decrements settled", seed, results, total)
		}
		w.net.RunFor(15 * time.Second) // drain visibility + sweeps

		if committedDelta > initial {
			t.Fatalf("seed %d: committed %d units against stock %d", seed, committedDelta, initial)
		}
		for i, n := range w.nodes {
			v, _, ok := n.Store().Get("p/stock")
			if !ok {
				continue
			}
			if v.Attr("stock") < 0 {
				t.Fatalf("seed %d: node %d stock=%d < 0", seed, i, v.Attr("stock"))
			}
		}
		// With no drops every replica must converge exactly.
		if drop == 0 {
			want := int64(initial) - committedDelta
			for i, n := range w.nodes {
				v, _, _ := n.Store().Get("p/stock")
				if v.Attr("stock") != want {
					t.Fatalf("seed %d: node %d stock=%d, want %d", seed, i, v.Attr("stock"), want)
				}
			}
		}
	}
}

// TestPropertyNoLostUpdates: randomized read-modify-write races on a
// counter; the final committed value must equal the number of
// committed increments (every commit's effect survives).
func TestPropertyNoLostUpdates(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property test skipped in -short")
	}
	for seed := int64(0); seed < 10; seed++ {
		cfg := Defaults(ModeMDCC)
		cfg.PendingTimeout = 2 * time.Second
		w := newPropWorld(cfg, 5, 2000+seed, 0)
		rng := rand.New(rand.NewSource(seed))

		var setup *CommitResult
		w.coords[0].Commit([]record.Update{
			record.Insert("p/ctr", record.Value{Attrs: map[string]int64{"n": 0}}),
		}, func(r CommitResult) { setup = &r })
		if !w.net.RunUntil(func() bool { return setup != nil }, time.Minute) || !setup.Committed {
			t.Fatalf("seed %d: setup failed", seed)
		}
		w.net.RunFor(3 * time.Second)

		const attempts = 30
		results, commits := 0, 0
		// Each attempt: read then physical increment with the read
		// version — classic OCC read-modify-write.
		attempt := func(ci int) {
			w.coords[ci].Read("p/ctr", func(v record.Value, ver record.Version, ok bool) {
				if !ok {
					results++
					return
				}
				w.coords[ci].Commit([]record.Update{
					record.Physical("p/ctr", ver, v.WithAttr("n", v.Attr("n")+1)),
				}, func(r CommitResult) {
					results++
					if r.Committed {
						commits++
					}
				})
			})
		}
		for i := 0; i < attempts; i++ {
			ci := rng.Intn(5)
			at := time.Duration(rng.Intn(25000)) * time.Millisecond
			c := ci
			w.net.At(3*time.Second+at, func() { attempt(c) })
		}
		if !w.net.RunUntil(func() bool { return results == attempts }, 10*time.Minute) {
			t.Fatalf("seed %d: only %d/%d RMWs settled", seed, results, attempts)
		}
		w.net.RunFor(15 * time.Second)

		// Final value must equal commit count — a lost update would
		// make it smaller.
		var final *record.Value
		w.coords[0].Read("p/ctr", func(v record.Value, _ record.Version, _ bool) { final = &v })
		w.net.RunUntil(func() bool { return final != nil }, time.Minute)
		if final.Attr("n") != int64(commits) {
			t.Fatalf("seed %d: final counter %d != %d commits (lost update)", seed, final.Attr("n"), commits)
		}
	}
}

// TestPropertyCrashConvergence: crash random storage nodes (at most
// one DC at a time) while writing; surviving replicas must converge
// and every settled transaction must be atomic.
func TestPropertyCrashConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property test skipped in -short")
	}
	for seed := int64(0); seed < 8; seed++ {
		cfg := Defaults(ModeMDCC)
		cfg.PendingTimeout = 2 * time.Second
		cfg.OptionTimeout = 700 * time.Millisecond
		w := newPropWorld(cfg, 5, 3000+seed, 0)
		rng := rand.New(rand.NewSource(seed))

		keys := []record.Key{"c/a", "c/b", "c/c"}
		var setup *CommitResult
		ups := make([]record.Update, 0, len(keys))
		for _, k := range keys {
			ups = append(ups, record.Insert(k, record.Value{Attrs: map[string]int64{"x": 0}}))
		}
		w.coords[0].Commit(ups, func(r CommitResult) { setup = &r })
		if !w.net.RunUntil(func() bool { return setup != nil }, time.Minute) || !setup.Committed {
			t.Fatalf("seed %d: setup failed", seed)
		}
		w.net.RunFor(3 * time.Second)

		// Crash one random DC's storage node mid-run, recover later.
		victimDC := topology.DC(rng.Intn(topology.NumDCs))
		victim := topology.StorageID(victimDC, 0)
		w.net.At(5*time.Second, func() { w.net.Fail(victim) })
		w.net.At(20*time.Second, func() { w.net.Recover(victim) })

		const attempts = 20
		results := 0
		for i := 0; i < attempts; i++ {
			ci := rng.Intn(5)
			key := keys[rng.Intn(len(keys))]
			at := time.Duration(3000+rng.Intn(25000)) * time.Millisecond
			c, k, n := ci, key, int64(i+1)
			w.net.At(at, func() {
				w.coords[c].Read(k, func(v record.Value, ver record.Version, ok bool) {
					if !ok {
						results++
						return
					}
					w.coords[c].Commit([]record.Update{
						record.Physical(k, ver, v.WithAttr("x", n)),
					}, func(CommitResult) { results++ })
				})
			})
		}
		if !w.net.RunUntil(func() bool { return results == attempts }, 10*time.Minute) {
			t.Fatalf("seed %d: only %d/%d writes settled", seed, results, attempts)
		}
		w.net.RunFor(30 * time.Second) // sweeps, catch-up

		// Surviving (never-failed) replicas of each key must agree.
		for _, k := range keys {
			var ref *kv.Entry
			for _, n := range w.nodes {
				if n.ID() == victim {
					continue // the crashed node may legitimately lag
				}
				v, ver, _ := n.Store().Get(k)
				e := kv.Entry{Key: k, Value: v, Version: ver}
				if ref == nil {
					ref = &e
					continue
				}
				if !e.Value.Equal(ref.Value) || e.Version != ref.Version {
					t.Fatalf("seed %d: survivors diverged on %s: %v v%d vs %v v%d",
						seed, k, ref.Value, ref.Version, e.Value, e.Version)
				}
			}
		}
	}
}

// TestPropertyManyKeysParallel: independent transactions on disjoint
// keys must all commit on the fast path regardless of schedule.
func TestPropertyManyKeysParallel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := Defaults(ModeMDCC)
		cfg.PendingTimeout = 0
		w := newPropWorld(cfg, 5, 4000+seed, 0)
		const n = 25
		results, commits := 0, 0
		for i := 0; i < n; i++ {
			ci := i % 5
			key := record.Key(fmt.Sprintf("pk/%d", i))
			w.coords[ci].Commit([]record.Update{
				record.Insert(key, record.Value{Attrs: map[string]int64{"x": int64(i)}}),
			}, func(r CommitResult) {
				results++
				if r.Committed {
					commits++
				}
			})
		}
		if !w.net.RunUntil(func() bool { return results == n }, time.Minute) {
			t.Fatalf("seed %d: only %d/%d settled", seed, results, n)
		}
		if commits != n {
			t.Fatalf("seed %d: %d/%d disjoint inserts committed", seed, commits, n)
		}
	}
}
