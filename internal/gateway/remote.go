package gateway

import (
	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// Thin client ⇄ gateway RPC, used when application servers talk to a
// remote gateway tier (cmd/mdcc-server -gateway) instead of embedding
// a coordinator: one commit or read request per message, matched to
// its reply by a client-scoped ReqID. Delivery is best-effort like
// everything on this transport; clients time requests out and the
// gateway's outcome for a lost reply is still settled by the normal
// protocol (the transaction itself is never lost once submitted).

// MsgTx submits a write-set for atomic commit.
type MsgTx struct {
	ReqID   uint64
	Updates []record.Update
}

// MsgTxReply reports the transaction outcome. Overloaded is set when
// admission control shed the transaction (it was never submitted);
// MixedKinds when the protocol rejected it under the kind-disjoint
// rule (core.ErrMixedUpdateKinds — a typed, permanent rejection:
// retrying the same update kind on the same key cannot succeed).
type MsgTxReply struct {
	ReqID      uint64
	Committed  bool
	Overloaded bool
	MixedKinds bool
}

// MsgRead asks the gateway for a read; Quorum selects an up-to-date
// quorum read instead of the nearest replica. Floor, when non-zero,
// is the client session's version floor (monotonic reads /
// read-your-writes): the gateway never serves its materialized copy
// below it, walking the fallback ladder instead (see
// Gateway.ReadFloor).
type MsgRead struct {
	ReqID  uint64
	Key    record.Key
	Quorum bool
	Floor  record.Version
}

// MsgReadReply answers MsgRead.
type MsgReadReply struct {
	ReqID   uint64
	Key     record.Key
	Value   record.Value
	Version record.Version
	Exists  bool
}

func init() {
	transport.RegisterMessage(MsgTx{})
	transport.RegisterMessage(MsgTxReply{})
	transport.RegisterMessage(MsgRead{})
	transport.RegisterMessage(MsgReadReply{})
}

// handle serves the RPC surface on the gateway's node.
func (g *Gateway) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case transport.Batch:
		for _, item := range m.Items {
			g.handle(item)
		}
	case MsgTx:
		from := env.From
		g.Commit(m.Updates, func(committed bool, err error) {
			g.net.Send(g.id, from, MsgTxReply{
				ReqID:      m.ReqID,
				Committed:  committed && err == nil,
				Overloaded: err == ErrOverloaded,
				MixedKinds: err == core.ErrMixedUpdateKinds,
			})
		})
	case MsgRead:
		from := env.From
		reply := func(val record.Value, ver record.Version, exists bool) {
			g.net.Send(g.id, from, MsgReadReply{
				ReqID: m.ReqID, Key: m.Key, Value: val, Version: ver, Exists: exists,
			})
		}
		if m.Quorum {
			g.ReadQuorum(m.Key, reply)
		} else {
			g.ReadFloor(m.Key, m.Floor, reply)
		}
	case core.MsgVisibilityFeed:
		g.onFeed(env.From, m)
	}
}
