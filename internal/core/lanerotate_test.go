package core

import (
	"fmt"
	"strings"
	"testing"

	"mdcc/internal/record"
)

// TestLaneRotationBoundsKeySeqs pins the lineage memory bound and its
// eviction rule: per-(lane, key) counter words are never evicted
// individually (a seq gap or reuse would corrupt summary identities);
// instead, once the map holds KeySeqWords words the whole lane retires
// — the era bumps, changing the TxID prefix, and a fresh map mints
// from 1 again. The coordinator's lineage state is therefore O(keys
// live in the current lane) no matter how many keys it ever wrote.
func TestLaneRotationBoundsKeySeqs(t *testing.T) {
	cfg := cfgNoSweep(ModeMDCC)
	cfg.KeySeqWords = 4
	w := newWorld(t, cfg, 1, 1, 11)
	c := w.coords[0]

	// Writing 4 distinct keys fills the lane; no rotation yet (the
	// rule is "retire when full at the next mint", never mid-lane).
	for i := 0; i < 4; i++ {
		key := record.Key(fmt.Sprintf("item/l%d", i))
		if res := w.commit(0, record.Insert(key, record.Value{Attrs: map[string]int64{"v": 1}})); !res.Committed {
			t.Fatalf("seed write %d aborted", i)
		}
	}
	if c.era != 0 || len(c.keySeqs) != 4 {
		t.Fatalf("after 4 distinct keys: era=%d words=%d, want era 0 with 4 words", c.era, len(c.keySeqs))
	}

	// The 5th distinct key triggers rotation: era 1, fresh map.
	res := w.commit(0, record.Insert("item/l4", record.Value{Attrs: map[string]int64{"v": 1}}))
	if !res.Committed {
		t.Fatal("post-rotation write aborted")
	}
	if c.era != 1 {
		t.Fatalf("era = %d after exceeding KeySeqWords, want 1", c.era)
	}
	if len(c.keySeqs) != 1 {
		t.Fatalf("rotated lane holds %d words, want 1 (only the new write)", len(c.keySeqs))
	}
	if !strings.Contains(string(res.Tx), "~e1#") {
		t.Fatalf("rotated-lane TxID %q does not carry the era", res.Tx)
	}

	// Re-writing a key from the retired lane must not alias its old
	// identities: the new option is (new lane, seq 1), not (old lane,
	// seq 2).
	res = w.commit(0, record.Physical("item/l0", 1, record.Value{Attrs: map[string]int64{"v": 2}}))
	if !res.Committed {
		t.Fatal("re-write of retired-lane key aborted")
	}
	if c.keySeqs["item/l0"] != 1 {
		t.Fatalf("retired-lane key re-minted at seq %d, want 1 in the fresh lane", c.keySeqs["item/l0"])
	}
	w.settle()

	// Both lanes' applies settled: every replica executed both options
	// on item/l0 (v2 at version 2) and their exact lineage summaries
	// agree — rotation is invisible to convergence.
	var want string
	for i, e := range w.storedValues("item/l0") {
		if e.Version != 2 || e.Value.Attr("v") != 2 {
			t.Fatalf("replica %d: %v v%d, want v=2 version 2", i, e.Value, e.Version)
		}
	}
	for _, n := range w.nodes {
		fp := n.LineageFingerprint("item/l0")
		if want == "" {
			want = fp
		} else if fp != want {
			t.Fatalf("lineage diverged across replicas:\n%s\nvs\n%s", want, fp)
		}
	}
	if !strings.Contains(want, "~e1") {
		t.Fatalf("settled summary does not mention the rotated lane: %s", want)
	}

	// The bound holds under churn: many more distinct keys keep the
	// map at or under the cap, rotating as needed.
	for i := 0; i < 20; i++ {
		key := record.Key(fmt.Sprintf("item/churn%d", i))
		if res := w.commit(0, record.Insert(key, record.Value{Attrs: map[string]int64{"v": 1}})); !res.Committed {
			t.Fatalf("churn write %d aborted", i)
		}
		if len(c.keySeqs) > 4 {
			t.Fatalf("counter map grew to %d words, cap 4", len(c.keySeqs))
		}
	}
	if c.era < 5 {
		t.Fatalf("era = %d after 20 churn keys at cap 4, expected several rotations", c.era)
	}
}
