// mdcc-bench regenerates every figure of the MDCC paper's evaluation
// (§5) on the simulated five-data-center WAN, printing the same rows
// and series the paper plots, plus the repo's own perf-trajectory
// benchmarks (the gateway saturation comparison).
//
// Usage:
//
//	mdcc-bench [flags] fig3|fig4|fig5|fig6|fig7|fig8|gateway|durability|live|scale|all
//
// Flags:
//
//	-quick     run at ~1/10 scale (fast; shapes approximate)
//	-seed N    simulation seed (default 1)
//	-out F     JSON output path for the gateway benchmark
//	           (default BENCH_gateway.json)
//	-recorder-gate P
//	           fail if the flight-recorder ablation's committed-tx/s
//	           delta exceeds P percent in magnitude (CI overhead gate;
//	           0 disables)
//
// Absolute numbers depend on the latency matrix and service-time
// model (DESIGN.md §6); the claims to check are the *shapes*: who
// wins, by what factor, where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mdcc/internal/bench"
	"mdcc/internal/stats"
)

var (
	quick    = flag.Bool("quick", false, "run at reduced scale")
	seed     = flag.Int64("seed", 1, "simulation seed")
	csvDir   = flag.String("csv", "", "also write raw series as CSV files into this directory")
	jsonOut  = flag.String("out", "BENCH_gateway.json", "JSON output path for the gateway benchmark")
	recGate  = flag.Float64("recorder-gate", 0, "fail (exit 1) if the flight-recorder ablation's |tx/s delta| exceeds this percentage (0 = no gate)")
	recvGate = flag.Float64("recovery-gate", 0, "fail (exit 1) if the checkpointed recovery arm's replay takes more than this many milliseconds (0 = no gate)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdcc-bench [-quick] [-seed N] fig3|fig4|fig5|fig6|fig7|fig8|gateway|durability|live|scale|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	switch flag.Arg(0) {
	case "fig3":
		fig3()
	case "fig4":
		fig4()
	case "fig5":
		fig5()
	case "fig6":
		fig6()
	case "fig7":
		fig7()
	case "fig8":
		fig8()
	case "gateway":
		gatewayBench()
	case "durability":
		durabilityBench()
	case "live":
		liveBench()
	case "scale":
		scaleBench()
	case "all":
		fig3()
		fig4()
		fig5()
		fig6()
		fig7()
		fig8()
		gatewayBench()
		durabilityBench()
		scaleBench()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// gatewayBench runs the gateway saturation comparison — per-session
// coordinators vs the DC-local gateway tier on a hot-key commutative
// stampede — and writes BENCH_gateway.json (the start of the repo's
// perf trajectory).
func gatewayBench() {
	sc := bench.GatewayPaperScale()
	if *quick {
		sc = bench.GatewayQuickScale()
	}
	header(
		fmt.Sprintf("Gateway saturation — %d closed-loop sessions on %d hot keys (%s measure)",
			sc.Sessions, sc.HotKeys, sc.Measure),
		"gateway tier >= 2x committed tx/s with a counter-verified acceptor-message reduction")
	cmp := bench.GatewaySaturation(*seed, sc)
	cmp.Quick = *quick
	row := func(r bench.GatewayRun) {
		fmt.Printf("%-26s %9.1f tx/s  %9d commits %7d aborts  %8.1f acceptor msgs/commit  (batch env %d carrying %d)\n",
			r.Mode, r.TPS, r.Commits, r.Aborts, r.AcceptorMsgsPerCommit,
			r.AcceptorBatchEnvelopes, r.AcceptorBatchItems)
	}
	row(cmp.Baseline)
	row(cmp.Gateway)
	if g := cmp.Gateway.Gateway; g != nil {
		fmt.Printf("gateway internals: %d merged options carrying %d updates (coalesce ratio %.2f), %d splits, %d shed, batch fan-in %.1f, %d escrow snapshots folded\n",
			g.MergedOptions, g.MergedUpdates, g.CoalesceRatio, g.MergeSplits, g.AdmissionRejects, g.BatchFanIn, g.EscrowUpdates)
	}
	fmt.Printf("speedup: %.2fx committed tx/s; acceptor msgs/commit reduced %.1fx\n", cmp.Speedup, cmp.MsgDrop)
	if rm := cmp.ReadMostly; rm != nil {
		fmt.Printf("\nread-mostly (%d sessions, %.0f%% reads, %s measure):\n",
			rm.Sessions, rm.ReadFrac*100, rm.Measure)
		rrow := func(r bench.ReadRun) {
			fmt.Printf("%-26s %10.0f reads/s  p50 %6.1fms p99 %6.1fms  %8.1f write tx/s  %0.3f read RPCs/read (%d cross-DC read msgs)\n",
				r.Mode, r.ReadsPerSec, r.ReadP50Ms, r.ReadP99Ms, r.WriteTPS, r.SteadyReadRPCsPerRead, r.CrossDCReadMsgs)
		}
		rrow(rm.Baseline)
		rrow(rm.Tier)
		if g := rm.Tier.Gateway; g != nil {
			fmt.Printf("read tier internals: %d local reads (frac %.3f), %d rpc fills, %d shared flights, %d quorum escalations; feed %d msgs carrying %d items, %d gaps, %d resubs\n",
				g.LocalReads, g.LocalReadFrac, g.ReadRPCs, g.ReadCoalesced, g.ReadQuorums,
				g.FeedMsgs, g.FeedItems, g.FeedGaps, g.FeedResubs)
		}
		fmt.Printf("read speedup: %.2fx reads/s over per-RPC reads\n", rm.SpeedupRead)
	}
	if l := cmp.Lineage; l != nil {
		fmt.Printf("\nhot-record lineage bytes (%d sessions, %s, one hot key; anti-entropy + classic-phase messages):\n",
			l.Sessions, l.Measure)
		lrow := func(r bench.LineageBytesRun) {
			fmt.Printf("%-26s %9d commits  sync %6d msgs @ %10.0f B/msg   phase %6d msgs @ %10.0f B/msg\n",
				r.Mode, r.Commits, r.SyncMsgs, r.SyncBPM, r.PhaseMsgs, r.PhaseBPM)
		}
		lrow(l.Baseline)
		lrow(l.Summary)
		fmt.Printf("lineage bytes/msg reduction: %.1fx anti-entropy, %.1fx classic-phase\n",
			l.SyncReduction, l.PhaseReduction)
	}
	if mg := cmp.MultiGroup; mg != nil {
		fmt.Printf("\nmulti-group capacity (%d sessions and %d hot keys per group, %s measure):\n",
			mg.SessionsPerGroup, mg.HotKeysPerGroup, sc.MultiMeasure)
		row(mg.Single)
		row(mg.Multi)
		fmt.Printf("capacity scaling: %.2fx committed tx/s at %dx replica groups\n", mg.ScalingTPS, mg.Groups)
	}
	gateFailed := false
	if a := cmp.Recorder; a != nil {
		fmt.Printf("\nflight-recorder ablation (headline gateway arm, recorder off vs on):\n")
		row(a.Off)
		row(a.On)
		fmt.Printf("recorder overhead: %+.3f%% committed tx/s (virtual), wall %s -> %s (%+.1f%%), %d events recorded\n",
			a.TPSDeltaPct, a.WallOff, a.WallOn, a.WallOverheadPct, a.RecorderEvents)
		if *recGate > 0 {
			delta := a.TPSDeltaPct
			if delta < 0 {
				delta = -delta
			}
			if delta > *recGate {
				fmt.Fprintf(os.Stderr, "mdcc-bench: recorder overhead gate FAILED: |%.3f%%| > %.3f%%\n", a.TPSDeltaPct, *recGate)
				gateFailed = true
			} else {
				fmt.Printf("recorder overhead gate passed: |%.3f%%| <= %.3f%%\n", a.TPSDeltaPct, *recGate)
			}
		}
	}
	if s := cmp.Scarce; s != nil {
		fmt.Printf("scarce stock arm: %d commits %d aborts, %d demarcation rejects at acceptors", s.Commits, s.Aborts, s.DemarcationRejects)
		if g := s.Gateway; g != nil {
			fmt.Printf("; gateway: %d merged options carrying %d updates, %d splits, %d bypassed on exhausted headroom",
				g.MergedOptions, g.MergedUpdates, g.MergeSplits, g.CoalesceBypass)
		}
		fmt.Println()
	}
	blob, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *jsonOut)
	if gateFailed {
		os.Exit(1)
	}
}

// durabilityBench measures what acknowledged durability costs (an
// fsync per append vs group commit vs NoSync, concurrent committers
// on real disk) and what checkpoints buy at recovery (full-log replay
// vs snapshot + bounded tail on the same durable state). Writes
// BENCH_durability.json; -recovery-gate bounds the checkpointed
// reopen for CI.
func durabilityBench() {
	sc := bench.DurabilityPaperScale()
	if *quick {
		sc = bench.DurabilityQuickScale()
	}
	header(
		fmt.Sprintf("Durability — %d committers x %d appends; recovery of %d ops (checkpoint every %d)",
			sc.Workers, sc.AppendsPer, sc.RecoveryOps, sc.Checkpoint),
		"group commit recovers most of the NoSync throughput; checkpointed recovery replays a bounded tail")
	res, err := bench.DurabilityBench(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	res.Quick = *quick
	for _, a := range res.Arms {
		fmt.Printf("%-18s %10.0f appends/s  (%d appends, %d workers, %.1fms)  %6d fsyncs covering %d appends, mean batch %.1f, max %d\n",
			a.Mode, a.AppendsPerSec, a.Appends, a.Workers, a.WallMs, a.Syncs, a.SyncedAppends, a.BatchMean, a.MaxBatch)
	}
	gateFailed := false
	for _, rcv := range res.Recovery {
		fmt.Printf("%-18s reopen %8.1fms  tail %7d records  (%d ops, %d checkpoints, snapshot=%v)\n",
			rcv.Mode, rcv.ReplayMs, rcv.TailRecords, rcv.Ops, rcv.Checkpoints, rcv.UsedSnapshot)
		if *recvGate > 0 && rcv.UsedSnapshot && rcv.ReplayMs > *recvGate {
			fmt.Fprintf(os.Stderr, "mdcc-bench: recovery gate FAILED: %s replay %.1fms > %.1fms\n", rcv.Mode, rcv.ReplayMs, *recvGate)
			gateFailed = true
		}
	}
	if *recvGate > 0 && !gateFailed {
		fmt.Printf("recovery gate passed: checkpointed reopen within %.0fms\n", *recvGate)
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_durability.json", append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_durability.json")
	if gateFailed {
		os.Exit(1)
	}
}

func scale() bench.Scale {
	if *quick {
		return bench.QuickScale()
	}
	return bench.PaperScale()
}

func header(title, paper string) {
	fmt.Printf("\n================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("paper result: %s\n", paper)
	fmt.Printf("================================================================\n")
}

func cdfRows(results map[bench.Protocol]*bench.Result, order []bench.Protocol) {
	fmt.Printf("%-11s %8s %8s %8s %8s %8s %9s %9s\n",
		"protocol", "p10(ms)", "p50(ms)", "p90(ms)", "p99(ms)", "mean", "commits", "aborts")
	for _, p := range order {
		r, ok := results[p]
		if !ok {
			continue
		}
		l := r.WriteLat
		fmt.Printf("%-11s %8.0f %8.0f %8.0f %8.0f %8.0f %9d %9d\n",
			p, l.Percentile(10), l.Percentile(50), l.Percentile(90), l.Percentile(99),
			l.Mean(), r.Commits, r.Aborts)
	}
}

func fig3() {
	sc := scale()
	header(
		fmt.Sprintf("Figure 3 — TPC-W write transaction response-time CDF (%d clients, %d items)", sc.Clients, sc.Items),
		"medians QW-3 188ms < QW-4 260 < MDCC 278 < 2PC 668 << Megastore* 17,810")
	res := bench.Figure3(*seed, sc)
	order := []bench.Protocol{bench.ProtoQW3, bench.ProtoQW4, bench.ProtoMDCC, bench.Proto2PC, bench.ProtoMegastore}
	cdfRows(res, order)
	fmt.Println()
	fmt.Print(stats.ASCIICDF(bench.CDFSeries(res), 64, true))
	writeCDFCSV("fig3", res)
}

func fig4() {
	sc := scale()
	clients := []int{50, 100, 200}
	if *quick {
		clients = []int{10, 20, 40}
	}
	header(
		fmt.Sprintf("Figure 4 — TPC-W throughput scale-out (clients %v)", clients),
		"QW near-linear; MDCC within ~10%% of QW-4 at 200 clients; 2PC lower; Megastore* flat & tiny")
	pts := bench.Figure4(*seed, clients, sc.Warmup, sc.Measure)
	order := []bench.Protocol{bench.ProtoQW3, bench.ProtoQW4, bench.ProtoMDCC, bench.Proto2PC, bench.ProtoMegastore}
	fmt.Printf("%-11s", "protocol")
	for _, p := range pts {
		fmt.Printf(" %12s", fmt.Sprintf("%d clients", p.Clients))
	}
	fmt.Println(" (committed write txn/s)")
	var rows []string
	for _, proto := range order {
		fmt.Printf("%-11s", proto)
		for _, p := range pts {
			fmt.Printf(" %12.1f", p.Results[proto].WriteTPS)
			rows = append(rows, fmt.Sprintf("%s,%d,%.2f", proto, p.Clients, p.Results[proto].WriteTPS))
		}
		fmt.Println()
	}
	writeRowsCSV("fig4", "protocol,clients,write_tps", rows)
}

func fig5() {
	sc := scale()
	header(
		fmt.Sprintf("Figure 5 — micro-benchmark response-time CDF (%d clients, %d items)", sc.Clients, sc.Items),
		"medians MDCC 245ms < Fast 276 < Multi 388 < 2PC 543")
	res := bench.Figure5(*seed, sc)
	order := []bench.Protocol{bench.ProtoMDCC, bench.ProtoFast, bench.ProtoMulti, bench.Proto2PC}
	cdfRows(res, order)
	fmt.Println()
	fmt.Print(stats.ASCIICDF(bench.CDFSeries(res), 64, false))
	writeCDFCSV("fig5", res)
}

func fig6() {
	sc := scale()
	pcts := []int{2, 5, 10, 20, 50, 90}
	header(
		"Figure 6 — commits/aborts vs hot-spot size (90% of accesses to the hot-spot)",
		"low conflict: MDCC most commits; 5%: Fast < Multi; 2%: fast variants collapse")
	pts := bench.Figure6(*seed, sc, pcts)
	fmt.Printf("%-8s", "hotspot")
	for _, proto := range []bench.Protocol{bench.Proto2PC, bench.ProtoMulti, bench.ProtoFast, bench.ProtoMDCC} {
		fmt.Printf(" %18s", proto)
	}
	fmt.Println("   (commits/aborts)")
	var rows []string
	for _, p := range pts {
		fmt.Printf("%6d%% ", p.HotspotPct)
		for _, proto := range []bench.Protocol{bench.Proto2PC, bench.ProtoMulti, bench.ProtoFast, bench.ProtoMDCC} {
			r := p.Results[proto]
			fmt.Printf(" %18s", fmt.Sprintf("%d/%d", r.Commits, r.Aborts))
			rows = append(rows, fmt.Sprintf("%s,%d,%d,%d", proto, p.HotspotPct, r.Commits, r.Aborts))
		}
		fmt.Println()
	}
	writeRowsCSV("fig6", "protocol,hotspot_pct,commits,aborts", rows)
}

func fig7() {
	sc := scale()
	pcts := []int{100, 80, 60, 40, 20}
	header(
		"Figure 7 — response times vs master locality (boxplots)",
		"Multi beats MDCC only at 100% locality; MDCC flat; Multi median worse already at 80%")
	pts := bench.Figure7(*seed, sc, pcts)
	var rows []string
	for _, p := range pts {
		fmt.Printf("locality %3d%%:\n", p.LocalPct)
		for _, proto := range []bench.Protocol{bench.ProtoMulti, bench.ProtoMDCC} {
			b := p.Results[proto].WriteLat.Box()
			fmt.Printf("  %-6s %s\n", proto, b)
			rows = append(rows, fmt.Sprintf("%s,%d,%.1f,%.1f,%.1f,%.1f,%.1f", proto, p.LocalPct, b.Min, b.Q1, b.Median, b.Q3, b.Max))
		}
	}
	writeRowsCSV("fig7", "protocol,locality_pct,min,q1,median,q3,max", rows)
}

func fig8() {
	clients, failAt, total := 100, 125*time.Second, 250*time.Second
	if *quick {
		clients, failAt, total = 20, 30*time.Second, 60*time.Second
	}
	header(
		fmt.Sprintf("Figure 8 — response-time series across a US-East outage at t=%v (%d US-West clients)", failAt, clients),
		"commits continue seamlessly; avg 173.5ms -> 211.7ms")
	fr := bench.Figure8(*seed, clients, failAt, total)
	fmt.Printf("mean before outage: %7.1f ms  (n=%d)\n", fr.PreMean, fr.PreCount)
	fmt.Printf("mean after outage:  %7.1f ms  (n=%d)\n", fr.PostMean, fr.PostCount)
	writeSeriesCSV("fig8", fr.Result.Series)
	fmt.Println("\ntime(s)  mean-latency(ms)  commits")
	for _, pt := range fr.Result.Series.Points() {
		marker := ""
		if pt.Start >= failAt && pt.Start < failAt+time.Second {
			marker = "   <-- data center failed"
		}
		fmt.Printf("%6.0f   %12.1f %9d%s\n", pt.Start.Seconds(), pt.Mean, pt.N, marker)
	}
}
