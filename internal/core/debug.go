package core

import "mdcc/internal/record"

// Record-level tracing, a debugging aid for the scenario harness:
// when TraceKey and Tracef are set (normally from a test), storage
// nodes log every state transition of that one record — votes,
// visibility application, base adoptions, anti-entropy — with enough
// context to reconstruct where a divergence came from. Zero overhead
// when unset beyond one nil check per traced site.
var (
	// TraceKey selects the record to trace ("" disables).
	TraceKey record.Key
	// Tracef receives the trace lines (e.g. testing.T.Logf).
	Tracef func(format string, args ...interface{})
)

func traceOn(key record.Key) bool {
	return TraceKey != "" && key == TraceKey && Tracef != nil
}

func tracef(format string, args ...interface{}) {
	Tracef(format, args...)
}
