// The scale arm is the repo's own benchmark (no paper figure): it
// sweeps simulated cluster size against ambient message drop and
// reports committed tx/s, post-heal convergence time, and the
// simulator's sim-time/wall-time ratio at each point. The ratio is
// the headline: the sharded event engine must keep a 1000-process
// 60s-virtual run faster than real time, and -sim-gate turns that
// into a CI failure when it regresses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mdcc/internal/scenario"
)

var (
	simGate = flag.Float64("sim-gate", 0, "scale arm: fail (exit 1) if any sweep point's wall time exceeds this many milliseconds (0 = no gate)")
	scNodes = flag.String("scale.nodes", "", "scale arm: comma-separated storage nodes per DC (default 1,40,188 = 65/260/1000 processes at 60 clients)")
	scDrop  = flag.String("scale.drop", "", "scale arm: comma-separated ambient drop percentages (default 0,2)")
)

// scaleResult is the committed BENCH_scale.json shape: the sweep grid
// plus enough header to re-run it.
type scaleResult struct {
	Scenario   string
	Seed       int64
	Clients    int
	DurationMS int64
	Quick      bool
	Points     []scenario.SweepPoint
}

func scaleBench() {
	cfg := scenario.SweepConfig{
		Seed:     *seed,
		Clients:  60,
		Duration: time.Minute,
	}
	if *quick {
		// Reduced slice for CI: shorter virtual clock, single drop
		// level, but still the full 1000-process point — that is the
		// point the gate exists for.
		cfg.Duration = 10 * time.Second
		cfg.DropPcts = []float64{0}
	}
	if *scNodes != "" {
		cfg.NodesPerDC = parseIntList(*scNodes)
	}
	if *scDrop != "" {
		cfg.DropPcts = parseFloatList(*scDrop)
	}
	header(
		fmt.Sprintf("Scaling curve — cluster size x drop%%, %s virtual per point (chaos-mix workload, %d clients)",
			cfg.Duration, cfg.Clients),
		"repo benchmark (no paper figure): tx/s holds as the cluster grows; sharded engine keeps 1000 processes faster than real time")
	cfg.Logf = func(format string, args ...interface{}) {
		fmt.Printf("  "+format+"\n", args...)
	}
	pts, err := scenario.Sweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%7s %8s %6s %8s %8s %12s %8s %9s %9s  %s\n",
		"nodes", "nodes/DC", "drop%", "commits", "tx/s", "converge-ms", "wall-ms", "sim/wall", "events/s", "verdict")
	failed := false
	var maxWall float64
	for _, p := range pts {
		verdict := "PASS"
		if !p.Passed {
			verdict, failed = "FAIL", true
		}
		if p.WallMS > maxWall {
			maxWall = p.WallMS
		}
		fmt.Printf("%7d %8d %6.1f %8d %8.1f %12.0f %8.0f %8.1fx %9.0f  %s\n",
			p.ClusterNodes, p.NodesPerDC, p.DropPct, p.Commits, p.TPS,
			p.ConvergeMS, p.WallMS, p.SimWallRatio, p.EventsPerSec, verdict)
	}
	if *simGate > 0 {
		if maxWall > *simGate {
			fmt.Fprintf(os.Stderr, "mdcc-bench: sim-wall gate FAILED: slowest point %.0fms > %.0fms\n", maxWall, *simGate)
			failed = true
		} else {
			fmt.Printf("sim-wall gate passed: slowest point %.0fms <= %.0fms\n", maxWall, *simGate)
		}
	}
	out := scaleResult{
		Scenario:   "chaos-mix",
		Seed:       *seed,
		Clients:    cfg.Clients,
		DurationMS: cfg.Duration.Milliseconds(),
		Quick:      *quick,
		Points:     pts,
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_scale.json", append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_scale.json")
	if failed {
		os.Exit(1)
	}
}

func parseIntList(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcc-bench: bad int %q in list\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func parseFloatList(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcc-bench: bad number %q in list\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
