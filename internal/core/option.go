// Package core implements the MDCC commit protocol (Kraska et al.,
// EuroSys 2013): per-record Generalized/Fast/Multi-Paxos instances
// that accept *options to execute updates*, an app-server-side
// coordinator that learns options and derives the transaction outcome
// deterministically (no unilateral aborts), quorum demarcation for
// value constraints on commutative updates, the pessimistic
// deadlock-avoidance policy, the fast⇄classic ballot policy (γ), and
// recovery of dangling transactions left by failed app-servers.
//
// Roles and message flow (defaults; §3 of the paper):
//
//	Coordinator (app-server DB library)
//	  ├─ fast path:   Propose ─→ all storage nodes ─ Vote ─→ coordinator
//	  ├─ classic path: Propose ─→ record leader ─ Phase2a ─→ nodes ─→ leader ─ Learned ─→ coordinator
//	  └─ after learning all options: Visibility ─→ storage nodes (async)
//
// Everything runs in transport handler context: one goroutine per
// node, no internal locking (see internal/transport).
package core

import (
	"fmt"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// TxID uniquely identifies a transaction. Coordinators mint them from
// their node ID plus a sequence number (the paper suggests UUIDs; a
// node-scoped sequence is equally unique and deterministic in the
// simulator).
type TxID string

// Decision is an acceptor's or learner's judgment of an option.
type Decision uint8

// Decision values.
const (
	DecUnknown Decision = iota
	DecAccept           // the paper's ω(up, ✓)
	DecReject           // the paper's ω(up, ✗)
)

// String renders the decision.
func (d Decision) String() string {
	switch d {
	case DecAccept:
		return "accept"
	case DecReject:
		return "reject"
	default:
		return "unknown"
	}
}

// OptionID identifies one option: a transaction writes each record at
// most once, so (transaction, key) is unique.
type OptionID struct {
	Tx  TxID
	Key record.Key
}

// String renders "tx@key".
func (id OptionID) String() string { return fmt.Sprintf("%s@%s", id.Tx, id.Key) }

// Option is a proposed right to execute one update of a transaction.
// Per §3.2.3 it carries the transaction id and the full write-set key
// list so any node can reconstruct and finish the transaction if the
// app-server dies.
type Option struct {
	Tx       TxID
	Coord    transport.NodeID // coordinator to notify when learned
	Update   record.Update
	WriteSet []record.Key // primary keys of the whole write-set
}

// ID returns the option's identity.
func (o Option) ID() OptionID { return OptionID{Tx: o.Tx, Key: o.Update.Key} }

// VotedOption is an option plus a decision — one element of the
// cstructs acceptors vote on.
type VotedOption struct {
	Opt      Option
	Decision Decision
}

// decidedEntry is one settled option: its final decision plus, when
// known, the option contents (so recovery can re-broadcast visibility
// for transactions whose coordinator died).
type decidedEntry struct {
	Decision  Decision
	Opt       Option
	HasOpt    bool
	settledAt time.Time
}

// decidedLog remembers recently decided options per record so votes,
// visibility and recovery are idempotent. Eviction is count-capped
// AND age-gated: an entry leaves only once the log is over its count
// limit and the entry is older than the retention horizon. A purely
// count-bounded FIFO is wrong on hot records — at tens of settles per
// second 512 entries cover mere seconds, while recovery after a long
// outage legitimately re-delivers visibility tens of seconds late,
// and a forgotten commutative option would be applied twice (caught
// by the scenario harness's conservation check).
type decidedLog struct {
	order     []OptionID
	byID      map[OptionID]decidedEntry
	limit     int
	retention time.Duration
}

const (
	defaultDecidedLimit     = 512
	defaultDecidedRetention = 2 * time.Minute
)

func newDecidedLog(limit int) *decidedLog {
	if limit <= 0 {
		limit = defaultDecidedLimit
	}
	// Maps grow on demand: most records settle only a handful of
	// options, so no capacity hint (pre-sizing 512 slots per record
	// dominated simulator CPU).
	return &decidedLog{
		byID:      make(map[OptionID]decidedEntry),
		limit:     limit,
		retention: defaultDecidedRetention,
	}
}

// record stores a final decision (first write wins: decisions are
// immutable once made) settled at time now. It reports whether the
// entry was newly inserted (false for already-known decisions), so
// callers can persist each decision exactly once.
func (l *decidedLog) record(id OptionID, d Decision, opt Option, hasOpt bool, now time.Time) bool {
	if _, ok := l.byID[id]; ok {
		return false
	}
	for len(l.order) >= l.limit {
		oldest := l.order[0]
		if now.Sub(l.byID[oldest].settledAt) < l.retention {
			break // still inside the re-delivery horizon: keep growing
		}
		l.order = l.order[1:]
		delete(l.byID, oldest)
	}
	l.order = append(l.order, id)
	l.byID[id] = decidedEntry{Decision: d, Opt: opt, HasOpt: hasOpt, settledAt: now}
	return true
}

// get looks up a decision.
func (l *decidedLog) get(id OptionID) (Decision, bool) {
	e, ok := l.byID[id]
	return e.Decision, ok
}

// entry looks up the full settled entry.
func (l *decidedLog) entry(id OptionID) (decidedEntry, bool) {
	e, ok := l.byID[id]
	return e, ok
}
