package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/wal"
)

// newCheckpointWorld is newDurableWorld with periodic checkpointing
// enabled, so crash recovery exercises the snapshot-plus-tail path
// instead of full-log replay.
func newCheckpointWorld(t *testing.T, seed int64, interval time.Duration) *durableWorld {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 3, ClientDC: -1})
	net := simnet.New(simnet.Options{
		Latency:     cl.Latency(),
		JitterFrac:  0.05,
		ServiceTime: 100 * time.Microsecond,
		Seed:        seed,
	})
	cfg := Defaults(ModeMDCC)
	cfg.PendingTimeout = 2 * time.Second
	cfg.SyncInterval = 500 * time.Millisecond
	cfg.CheckpointInterval = interval
	w := &durableWorld{t: t, net: net, cl: cl, cfg: cfg, dir: t.TempDir()}
	for _, n := range cl.Storage {
		ds, err := OpenDurable(filepath.Join(w.dir, string(n.ID)), true)
		if err != nil {
			t.Fatalf("open durable: %v", err)
		}
		w.durables = append(w.durables, ds)
		w.nodes = append(w.nodes, NewDurableStorageNode(n.ID, n.DC, net, cl, cfg, ds))
	}
	for _, c := range cl.Clients {
		w.coords = append(w.coords, NewCoordinator(c.ID, c.DC, net, cl, cfg))
	}
	return w
}

// TestCheckpointBoundsRecovery runs traffic past several checkpoint
// intervals, crashes a replica, and asserts recovery seeds from a
// snapshot with a tail bounded by the work since it — and that the
// recovered incarnation's state is exactly the crashed one's.
func TestCheckpointBoundsRecovery(t *testing.T) {
	w := newCheckpointWorld(t, 11, 1*time.Second)
	key := record.Key("acct/cp")
	for _, ds := range w.durables {
		if err := ds.Store.Put(key, record.Value{Attrs: map[string]int64{"bal": 0}}, 1); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	deadline := w.net.Now().Add(8 * time.Second)
	var loop func(ci int)
	loop = func(ci int) {
		if !w.net.Now().Before(deadline) {
			return
		}
		w.coords[ci].Commit([]record.Update{
			record.Commutative(key, map[string]int64{"bal": 1}),
		}, func(CommitResult) { loop(ci) })
	}
	for ci := range w.coords {
		ci := ci
		w.net.At(0, func() { loop(ci) })
	}
	w.net.RunFor(10 * time.Second)

	const victim = 1
	info := w.nodes[victim].Durability()
	if info.Checkpoints == 0 || info.SnapshotSeq == 0 {
		t.Fatalf("no checkpoint taken in 10s at 1s interval: %+v", info)
	}
	totalAppends := info.Store.Appends + info.Oplog.Appends
	preVal, preVer, _ := w.durables[victim].Store.Get(key)
	preEntries := w.durables[victim].Store.Entries()

	w.crash(victim)
	w.restart(victim)

	rs := w.durables[victim].RecoveryStats()
	if !rs.UsedSnapshot {
		t.Fatalf("recovery did not use a snapshot: %+v", rs)
	}
	if rs.FellBack || rs.FullReplay {
		t.Errorf("unexpected fallback/full replay: %+v", rs)
	}
	// The bound: the tail is the work since the last checkpoint, which
	// must be well under everything the node ever logged.
	if tail := rs.TailStore + rs.TailOplog; tail >= totalAppends {
		t.Errorf("recovery tail %d not bounded by checkpoint (total appends %d)", tail, totalAppends)
	}
	v, ver, ok := w.durables[victim].Store.Get(key)
	if !ok || ver != preVer || v.Attr("bal") != preVal.Attr("bal") {
		t.Errorf("recovered state bal=%d ver=%d, want bal=%d ver=%d",
			v.Attr("bal"), ver, preVal.Attr("bal"), preVer)
	}
	post := w.durables[victim].Store.Entries()
	if len(post) != len(preEntries) {
		t.Fatalf("recovered %d entries, want %d", len(post), len(preEntries))
	}
	for i, e := range preEntries {
		if post[i].Key != e.Key || post[i].Version != e.Version || !post[i].Value.Equal(e.Value) {
			t.Errorf("entry %s diverged after recovery: ver %d vs %d", e.Key, post[i].Version, e.Version)
		}
	}
	// The restarted node keeps checkpointing and serving.
	w.net.RunFor(5 * time.Second)
	if got := w.nodes[victim].Durability(); got.Checkpoints == 0 {
		t.Errorf("restarted incarnation never checkpointed: %+v", got)
	}
}

// TestCheckpointFallbackToPreviousSnapshot corrupts the newest
// snapshot and asserts recovery falls back to the previous one plus
// the longer log tail its cut retains — exact state, no error — and
// that the corrupt snapshot is removed so later pruning cannot prefer
// it. Corrupting both snapshots must surface typed ErrCorrupt.
func TestCheckpointFallbackToPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDurable(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	put := func(i, ver int) {
		k := record.Key([]byte{'k', byte('0' + i%10)})
		if err := ds.Store.Put(k, record.Value{Attrs: map[string]int64{"x": int64(ver)}}, record.Version(ver)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 10; i++ {
		put(i, 1)
	}
	if err := ds.Checkpoint(nil); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	for i := 0; i < 10; i++ {
		put(i, 2)
	}
	if err := ds.Checkpoint(nil); err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	for i := 0; i < 5; i++ {
		put(i, 3)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	corrupt := func(seq int) {
		path := filepath.Join(dir, "snap", "snap-0000000"+string(rune('0'+seq))+".snap")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read snapshot: %v", err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("rewrite snapshot: %v", err)
		}
	}
	corrupt(2)

	ds, err = OpenDurable(dir, true)
	if err != nil {
		t.Fatalf("reopen with corrupt newest snapshot: %v", err)
	}
	rs := ds.RecoveryStats()
	if !rs.UsedSnapshot || !rs.FellBack || rs.SnapshotSeq != 1 {
		t.Fatalf("expected fallback to snapshot 1: %+v", rs)
	}
	for i := 0; i < 10; i++ {
		want := int64(2)
		if i < 5 {
			want = 3
		}
		k := record.Key([]byte{'k', byte('0' + i)})
		v, ver, ok := ds.Store.Get(k)
		if !ok || v.Attr("x") != want || ver != record.Version(want) {
			t.Errorf("%s: got x=%d ver=%d ok=%v, want %d", k, v.Attr("x"), ver, ok, want)
		}
	}
	// The corrupt snapshot is gone; the next checkpoint supersedes it.
	if seqs, _ := wal.ListSnapshots(filepath.Join(dir, "snap")); len(seqs) != 1 || seqs[0] != 1 {
		t.Errorf("corrupt snapshot not removed: %v", seqs)
	}
	if err := ds.Checkpoint(nil); err != nil {
		t.Fatalf("checkpoint after fallback: %v", err)
	}
	if ds.SnapshotSeq() != 2 {
		t.Errorf("snapshot seq after fallback checkpoint = %d, want 2", ds.SnapshotSeq())
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Both snapshots corrupt: the replica's state is unrecoverable
	// locally and the error must say so, typed.
	corrupt(1)
	corrupt(2)
	if _, err := OpenDurable(dir, true); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("both snapshots corrupt: got %v, want wal.ErrCorrupt", err)
	}
}

// TestDegradeOnDurabilityFailure arms a persistent fsync fault under a
// durable node's logs and asserts the first refused write degrades it:
// typed error latched, node halted, staged votes and feed keys
// dropped, counters visible — and nothing acked after the failure.
func TestDegradeOnDurabilityFailure(t *testing.T) {
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 1, ClientDC: -1})
	net := simnet.New(simnet.Options{Latency: cl.Latency(), Seed: 1})
	faults := wal.NewFaults()
	ds, err := OpenDurableOpts(t.TempDir(), DurableOptions{NoSync: true, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	sn := cl.Storage[0]
	n := NewDurableStorageNode(sn.ID, sn.DC, net, cl, Defaults(ModeMDCC), ds)

	if err := n.store.Put("warm", record.Value{Attrs: map[string]int64{"x": 1}}, 1); err != nil {
		t.Fatalf("healthy put: %v", err)
	}
	faults.FailSync(true)
	n.storePut("k", record.Value{Attrs: map[string]int64{"x": 2}}, 2)
	if n.DurabilityError() == nil {
		t.Fatal("node did not degrade on refused put")
	}
	if !errors.Is(n.DurabilityError(), ErrDurability) {
		t.Errorf("degraded error %v does not wrap ErrDurability", n.DurabilityError())
	}
	if !n.halted {
		t.Error("degraded node not halted")
	}
	if m := n.Metrics(); m.DurabilityFailures != 1 {
		t.Errorf("DurabilityFailures=%d, want 1", m.DurabilityFailures)
	}
	// Later failures don't re-latch; the first error is the story.
	n.storePut("k2", record.Value{}, 1)
	if m := n.Metrics(); m.DurabilityFailures != 1 {
		t.Errorf("degrade latched twice: %d", m.DurabilityFailures)
	}
	if !n.Durability().Degraded {
		t.Error("Durability() does not report degraded")
	}
	// Oplog appends degrade the same way on a fresh node.
	faults2 := wal.NewFaults()
	ds2, err := OpenDurableOpts(t.TempDir(), DurableOptions{NoSync: true, Faults: faults2})
	if err != nil {
		t.Fatal(err)
	}
	cl2 := topology.NewCluster(topology.Layout{NodesPerDC: 2, Clients: 1, ClientDC: -1})
	sn2 := cl2.Storage[1]
	n2 := NewDurableStorageNode(sn2.ID, sn2.DC, net, cl2, Defaults(ModeMDCC), ds2)
	faults2.FailSync(true)
	n2.logDecision(OptionID{Tx: TxID("tx1"), Key: "k"}, DecAccept, Option{}, false)
	if n2.DurabilityError() == nil {
		t.Fatal("oplog append failure did not degrade node")
	}
}
