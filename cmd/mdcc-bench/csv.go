package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mdcc/internal/bench"
	"mdcc/internal/stats"
)

// writeCDFCSV dumps each protocol's latency CDF as
// "<dir>/<name>.csv" with columns protocol,latency_ms,cdf — the raw
// series behind the paper's CDF figures, ready for gnuplot/matplotlib.
func writeCDFCSV(name string, results map[bench.Protocol]*bench.Result) {
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	path := filepath.Join(*csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, "protocol,latency_ms,cdf")
	protos := make([]string, 0, len(results))
	byName := map[string]*stats.Sample{}
	for p, r := range results {
		protos = append(protos, string(p))
		byName[string(p)] = r.WriteLat
	}
	sort.Strings(protos)
	for _, p := range protos {
		for _, pt := range byName[p].CDF(200) {
			fmt.Fprintf(f, "%s,%.3f,%.5f\n", p, pt.X, pt.Frac)
		}
	}
	fmt.Printf("(raw CDF series written to %s)\n", path)
}

// writeSeriesCSV dumps a time series (figure 8) as CSV.
func writeSeriesCSV(name string, series *stats.TimeSeries) {
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	path := filepath.Join(*csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, "time_s,mean_latency_ms,commits")
	for _, pt := range series.Points() {
		fmt.Fprintf(f, "%.0f,%.2f,%d\n", pt.Start.Seconds(), pt.Mean, pt.N)
	}
	fmt.Printf("(time series written to %s)\n", path)
}

// writeRowsCSV dumps generic rows (figures 4, 6, 7).
func writeRowsCSV(name, header string, rows []string) {
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	path := filepath.Join(*csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, header)
	for _, r := range rows {
		fmt.Fprintln(f, r)
	}
	fmt.Printf("(rows written to %s)\n", path)
}
