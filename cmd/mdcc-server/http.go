package main

import (
	"encoding/json"
	"log"
	"net/http"

	"mdcc/internal/core"
	"mdcc/internal/kv"
	"mdcc/internal/topology"
)

// serveHTTP exposes operational endpoints:
//
//	GET /healthz  — liveness probe
//	GET /metrics  — per-shard protocol counters and store sizes (JSON)
func serveHTTP(addr string, dc topology.DC, nodes []*core.StorageNode, stores []*kv.Store) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		type shard struct {
			Node    string       `json:"node"`
			Keys    int          `json:"keys"`
			Puts    int64        `json:"puts"`
			Metrics core.Metrics `json:"protocol"`
		}
		out := struct {
			DC     string  `json:"dc"`
			Shards []shard `json:"shards"`
		}{DC: dc.String()}
		for i, n := range nodes {
			out.Shards = append(out.Shards, shard{
				Node:    string(n.ID()),
				Keys:    stores[i].Len(),
				Puts:    stores[i].Puts(),
				Metrics: n.Metrics(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	log.Printf("http endpoints on %s (/healthz, /metrics)", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("http: %v", err)
	}
}
