package transport

import (
	"encoding/hex"
	"reflect"
	"testing"
	"time"
)

// TestWireGoldenTransport pins the transport's own wire encodings
// (hello, batch) — small enough to write out by hand, so the vectors
// double as format documentation. A mismatch means the wire format
// changed without a WireVersion bump.
func TestWireGoldenTransport(t *testing.T) {
	hello := helloMsg{ID: "n1", Addr: "x"}
	if got := hex.EncodeToString(hello.AppendWire(nil)); got != "026e310178" {
		t.Errorf("helloMsg vector = %s, want 026e310178", got)
	}
	// A batch is: uvarint count, then each item as a nested envelope
	// (From, To, TraceClk, tag, body).
	b := Batch{Items: []Envelope{{From: "a", To: "b", Msg: hello}}}
	if got := hex.EncodeToString(b.AppendWire(nil)); got != "01016101620001026e310178" {
		t.Errorf("Batch vector = %s, want 01016101620001026e310178", got)
	}
}

// TestEnvelopeGobFallback round-trips a message type that has no
// registered wire codec: it must ride tag 0 as a self-contained gob
// payload inside the binary framing.
func TestEnvelopeGobFallback(t *testing.T) {
	in := Envelope{From: "a", To: "b", TraceClk: 9, Msg: ping{Seq: 3}}
	buf, err := AppendEnvelope(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if buf[len("\x01a\x01b\x09")] != tagGob {
		t.Fatalf("expected gob fallback tag, frame %x", buf)
	}
	out, err := DecodeEnvelope(NewWireReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("fallback round trip: got %+v, want %+v", out, in)
	}
}

// TestDecodeEnvelopeCorrupt feeds truncations of a valid frame to the
// decoder: every prefix must fail cleanly (no panic, no success).
func TestDecodeEnvelopeCorrupt(t *testing.T) {
	full, err := AppendEnvelope(nil, Envelope{From: "a", To: "b", Msg: Batch{Items: []Envelope{
		{From: "x", To: "y", Msg: helloMsg{ID: "n", Addr: "addr"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := DecodeEnvelope(NewWireReader(full[:n])); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) decoded without error", n, len(full))
		}
	}
	if _, err := DecodeEnvelope(NewWireReader(append(full[:len(full):len(full)], 0xff))); err == nil {
		// Trailing garbage after a complete message is legal at this
		// layer (framing bounds the payload), so only assert no panic.
		_ = err
	}
}

// TestTCPMixedCodec proves a binary-configured sender and a
// gob-configured sender interoperate: the read side auto-detects each
// connection's codec from its preamble.
func TestTCPMixedCodec(t *testing.T) {
	srv := NewTCP(nil)
	defer srv.Close()
	srv.SetCodec(CodecGob) // replies travel as legacy gob streams
	srvAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Register("srv", func(e Envelope) {
		srv.Send("srv", e.From, pong{Seq: e.Msg.(ping).Seq + 1})
	})

	cli := NewTCP(map[NodeID]string{"srv": srvAddr})
	defer cli.Close()
	cli.SetCodec(CodecBinary)
	cliAddr, err := cli.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.AddRoute("cli", cliAddr)
	done := make(chan int, 1)
	cli.Register("cli", func(e Envelope) { done <- e.Msg.(pong).Seq })

	cli.Send("cli", "srv", ping{Seq: 41})
	select {
	case seq := <-done:
		if seq != 42 {
			t.Fatalf("mixed-codec round trip = %d, want 42", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mixed-codec round trip timed out")
	}
}

// TestTCPBinaryBatch sends a wire-coded Batch end to end over the
// binary codec (nested envelope decoding on a real connection).
func TestTCPBinaryBatch(t *testing.T) {
	srv := NewTCP(nil)
	defer srv.Close()
	srvAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Envelope, 4)
	srv.Register("srv", func(e Envelope) { got <- e })

	cli := NewTCP(map[NodeID]string{"srv": srvAddr})
	defer cli.Close()
	cli.Send("cli", "srv", Batch{Items: []Envelope{
		{From: "n1", To: "srv", Msg: ping{Seq: 1}},
		{From: "n2", To: "srv", Msg: ping{Seq: 2}},
	}})
	select {
	case e := <-got:
		b, ok := e.Msg.(Batch)
		if !ok || len(b.Items) != 2 {
			t.Fatalf("got %#v, want a 2-item batch", e.Msg)
		}
		if b.Items[0].From != "n1" || b.Items[0].Msg.(ping).Seq != 1 ||
			b.Items[1].From != "n2" || b.Items[1].Msg.(ping).Seq != 2 {
			t.Fatalf("batch items mangled: %#v", b.Items)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch not delivered")
	}
}

// TestTCPHelloReannouncedAfterRestart is the satellite-bug regression
// test: a server restart wipes its learned routes, and before the fix
// the client's hello only ever rode the first connection — so replies
// after the restart were silently unroutable.
func TestTCPHelloReannouncedAfterRestart(t *testing.T) {
	srvHandler := func(n *TCP) Handler {
		return func(e Envelope) { n.Send("srv", e.From, pong{Seq: e.Msg.(ping).Seq + 1}) }
	}
	srv := NewTCP(nil)
	srvAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Register("srv", srvHandler(srv))

	cli := NewTCP(map[NodeID]string{"srv": srvAddr})
	defer cli.Close()
	cliAddr, err := cli.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 16)
	cli.Register("cli", func(e Envelope) { done <- e.Msg.(pong).Seq })
	cli.Hello(srvAddr, "cli", cliAddr)

	cli.Send("cli", "srv", ping{Seq: 1})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("no reply before restart")
	}

	// Restart the server on the same address: fresh TCP, no learned
	// routes. The client's existing connection dies with it.
	srv.Close()
	srv2 := NewTCP(nil)
	defer srv2.Close()
	if _, err := srv2.Listen(srvAddr); err != nil {
		t.Fatalf("rebind %s: %v", srvAddr, err)
	}
	srv2.Register("srv", srvHandler(srv2))

	// The client keeps sending; once it notices the dead connection and
	// redials, the fresh connection's head must replay the hello so
	// srv2 can route the reply.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cli.Send("cli", "srv", ping{Seq: 2})
		select {
		case seq := <-done:
			if seq != 3 {
				continue // stale pre-restart reply
			}
			return
		case <-time.After(100 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted server never routed a reply: hello not re-announced")
		}
	}
}

// TestTCPSendDropCounters is the counter-bugfix regression test:
// dropped messages must land in the Dropped* counters, not MsgsSent.
func TestTCPSendDropCounters(t *testing.T) {
	n := NewTCP(nil)
	defer n.Close()
	n.Send("a", "nowhere", ping{})
	n.Send("a", "nowhere", ping{})
	s := n.Stats()
	if s.DroppedNoRoute != 2 {
		t.Errorf("DroppedNoRoute = %d, want 2", s.DroppedNoRoute)
	}
	if s.MsgsSent != 0 {
		t.Errorf("MsgsSent = %d, want 0: drops must not count as sends", s.MsgsSent)
	}
}

// TestEncodedSizeSmaller sanity-checks the size comparison helpers on
// transport's own messages.
func TestEncodedSizeSmaller(t *testing.T) {
	b := Batch{Items: []Envelope{
		{From: "a", To: "b", Msg: helloMsg{ID: "n1", Addr: "127.0.0.1:7000"}},
		{From: "c", To: "d", Msg: helloMsg{ID: "n2", Addr: "127.0.0.1:7001"}},
	}}
	binN, err := EncodedSize(b)
	if err != nil {
		t.Fatal(err)
	}
	gobN, err := GobEncodedSize(b)
	if err != nil {
		t.Fatal(err)
	}
	if binN >= gobN {
		t.Errorf("batch: binary %dB not smaller than gob %dB", binN, gobN)
	}
}
