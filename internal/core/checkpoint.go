package core

import (
	"sort"

	"mdcc/internal/record"
	"mdcc/internal/wal"
)

// Periodic checkpointing. A durable node with CheckpointInterval > 0
// snapshots its full state — committed kv (escrow bases included),
// every record's lineage summary, the decided-option cache — and
// truncates WAL segments an older snapshot covers, so crash recovery
// is the newest valid snapshot plus a bounded log tail rather than a
// replay of every write the node ever took. Checkpoints run in the
// node's single-threaded handler context via the same timer pattern as
// the dangling-option sweep.

// scheduleCheckpoint arms the periodic checkpoint timer, if this node
// is durable and checkpointing is enabled.
func (n *StorageNode) scheduleCheckpoint() {
	if n.durable == nil || n.cfg.CheckpointInterval <= 0 {
		return
	}
	n.net.After(n.id, n.cfg.CheckpointInterval, func() {
		if n.halted {
			return
		}
		n.Checkpoint()
		n.scheduleCheckpoint()
	})
}

// Checkpoint writes a full-state snapshot now and truncates log
// segments the previous snapshot covers. A refused snapshot write
// degrades the node like any other durability failure: a node whose
// disk cannot take a checkpoint is a node whose disk is failing.
func (n *StorageNode) Checkpoint() {
	if n.durable == nil || n.degraded != nil {
		return
	}
	if err := n.durable.Checkpoint(n.snapshotOplog()); err != nil {
		n.degrade(err)
		return
	}
	n.nCheckpoints++
}

// snapshotOplog serializes every record's lineage summary and decided
// cache in oplog-replay shape, so restoring a snapshot runs through
// NewDurableStorageNode's seeding loop unchanged: one summary-snapshot
// entry per record (unioned first), then the decided options in
// settle order (recorded and noted idempotently). Keys are emitted in
// sorted order so identical states checkpoint to identical bytes.
func (n *StorageNode) snapshotOplog() []oplogEntry {
	keys := make([]record.Key, 0, len(n.recs))
	for k := range n.recs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []oplogEntry
	for _, k := range keys {
		r := n.recs[k]
		if !r.summary.IsEmpty() {
			snap := r.summary.Clone()
			out = append(out, oplogEntry{Key: k, Snapshot: &snap})
		}
		for _, id := range r.decided.order {
			e, ok := r.decided.entry(id)
			if !ok {
				continue
			}
			oe := oplogEntry{Key: k, Tx: id.Tx, Decision: e.Decision}
			if e.HasOpt {
				oe.Up, oe.HasUp = e.Opt.Update, true
				oe.KeySeq = e.Opt.KeySeq
			}
			out = append(out, oe)
		}
	}
	return out
}

// DurabilityInfo is a durable node's storage-engine gauge set, exposed
// by /metrics and scenario reports.
type DurabilityInfo struct {
	// Store and Oplog are the two WALs' counters (appends, fsyncs,
	// group-commit batch sizes, live bytes, poisoned state).
	Store wal.Stats
	Oplog wal.Stats
	// SnapshotSeq is the newest checkpoint's sequence (0 = none);
	// AppendsSinceCheckpoint the snapshot age in WAL records — the tail
	// a crash right now would replay.
	SnapshotSeq            int
	AppendsSinceCheckpoint int64
	// Checkpoints counts checkpoints taken by this incarnation.
	Checkpoints int64
	// Replay describes how the last recovery went.
	Replay ReplayStats
	// Degraded is true when the node latched a durability failure.
	Degraded bool
}

// Durability reports the storage-engine gauges (zero value for
// memory-only nodes).
func (n *StorageNode) Durability() DurabilityInfo {
	if n.durable == nil {
		return DurabilityInfo{Degraded: n.degraded != nil}
	}
	return DurabilityInfo{
		Store:                  n.durable.Store.Log().Stats(),
		Oplog:                  n.durable.oplog.Stats(),
		SnapshotSeq:            n.durable.snapSeq,
		AppendsSinceCheckpoint: n.durable.AppendsSinceCheckpoint(),
		Checkpoints:            n.nCheckpoints,
		Replay:                 n.durable.replay,
		Degraded:               n.degraded != nil,
	}
}
