package bench

import (
	"bytes"
	"encoding/gob"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// Hot-record lineage-bytes benchmark: how much does a hot commutative
// record cost on the wire in lineage-bearing messages — anti-entropy
// sync replies and classic-phase bases (Phase1b/Phase2a)?
//
// The pre-summary design shipped the whole decided-log retention
// window *with option contents* on every such message, so a record
// settling thousands of options inside the window paid O(history)
// bytes per exchange (DESIGN.md §5 carried this as a known message
// cost). Exact lineage summaries replace the lists with a few
// interval sets — O(lanes) — regardless of history length.
//
// Both arms run the identical workload/seed; the baseline arm sets
// core.Config.ShipFullLineage, which attaches the legacy decided
// lists alongside the summaries (consumers ignore them), and the
// meter prices each arm's lineage-bearing messages by gob encoding.

// LineageBytesRun is one arm's wire-cost harvest.
type LineageBytesRun struct {
	Mode    string `json:"mode"` // "full-window-lists" | "summaries"
	Commits int64  `json:"commits"`

	SyncMsgs  int64   `json:"syncMsgs"`
	SyncBytes int64   `json:"syncBytes"`
	SyncBPM   float64 `json:"syncBytesPerMsg"`

	PhaseMsgs  int64   `json:"phaseMsgs"`
	PhaseBytes int64   `json:"phaseBytes"`
	PhaseBPM   float64 `json:"phaseBytesPerMsg"`
}

// LineageBytesComparison is the two-arm comparison
// (BENCH_gateway.json "lineage" section).
type LineageBytesComparison struct {
	Seed     int64           `json:"seed"`
	Sessions int             `json:"sessions"`
	Measure  string          `json:"measure"`
	Baseline LineageBytesRun `json:"baseline"`
	Summary  LineageBytesRun `json:"summary"`
	// SyncReduction / PhaseReduction are baseline ÷ summary
	// bytes-per-message for the two lineage-bearing channels.
	SyncReduction  float64 `json:"syncBytesReduction"`
	PhaseReduction float64 `json:"phaseBytesReduction"`
}

// LineageScale sizes the hot-record arm.
type LineageScale struct {
	Sessions int
	Measure  time.Duration
	// Stock preloads the hot key low enough to exhaust mid-run: the
	// resulting fast-path demarcation rejects trigger the leader's
	// classic base-rewrite rounds (algorithm 1 lines 24-26), so the
	// Phase1b/Phase2a channel carries the hot record's lineage too.
	Stock int64
}

// LineageHotRecord runs both arms and compares.
func LineageHotRecord(seed int64, sc LineageScale) *LineageBytesComparison {
	base := runLineageArm(seed, sc, true)
	summ := runLineageArm(seed, sc, false)
	cmp := &LineageBytesComparison{
		Seed:     seed,
		Sessions: sc.Sessions,
		Measure:  sc.Measure.String(),
		Baseline: base,
		Summary:  summ,
	}
	if summ.SyncBPM > 0 {
		cmp.SyncReduction = base.SyncBPM / summ.SyncBPM
	}
	if summ.PhaseBPM > 0 {
		cmp.PhaseReduction = base.PhaseBPM / summ.PhaseBPM
	}
	return cmp
}

func gobSize(v interface{}) int64 {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0
	}
	return int64(buf.Len())
}

func runLineageArm(seed int64, sc LineageScale, fullLists bool) LineageBytesRun {
	res := LineageBytesRun{Mode: "summaries"}
	if fullLists {
		res.Mode = "full-window-lists"
	}
	cl := topology.NewCluster(topology.Layout{
		NodesPerDC: 1,
		Clients:    sc.Sessions,
		ClientDC:   -1,
	})
	// The baseline arm prices the true PRE-summary wire format: its
	// messages carry both the summary and the legacy lists
	// (ShipFullLineage is additive so both arms run identical
	// protocol flows), so the summary fields are zeroed on a copy
	// before sizing — otherwise the baseline would be overstated by
	// the summary bytes and the reduction factor inflated.
	meter := func(e transport.Envelope) {
		switch m := e.Msg.(type) {
		case core.MsgSyncReply:
			res.SyncMsgs++
			if fullLists {
				entries := append([]core.SyncEntry(nil), m.Entries...)
				for i := range entries {
					entries[i].Lineage = core.LineageSummary{}
				}
				m.Entries = entries
			}
			res.SyncBytes += gobSize(&m)
		case core.MsgPhase1b:
			res.PhaseMsgs++
			if fullLists {
				m.Lineage = core.LineageSummary{}
			}
			res.PhaseBytes += gobSize(&m)
		case core.MsgPhase2a:
			res.PhaseMsgs++
			if fullLists {
				m.BaseLineage = core.LineageSummary{}
			}
			res.PhaseBytes += gobSize(&m)
		}
	}
	net := simnet.New(simnet.Options{
		Latency:     cl.Latency(),
		JitterFrac:  0.10,
		ServiceTime: 250 * time.Microsecond,
		Seed:        seed,
		OnDeliver:   meter,
	})
	cfg := core.Defaults(core.ModeMDCC)
	cfg.Constraints = []record.Constraint{record.MinBound("units", 0)}
	cfg.SyncInterval = 500 * time.Millisecond
	cfg.PendingTimeout = 5 * time.Second
	// Small γ keeps the record cycling fast→classic→fast, so
	// Phase1b/Phase2a carry the hot record's lineage regularly (the
	// per-exchange cost under measurement).
	cfg.Gamma = 3
	cfg.ShipFullLineage = fullLists

	key := record.Key("stock/lineage-hot")
	stock := sc.Stock
	if stock <= 0 {
		stock = 1 << 40
	}
	stores := make([]*kv.Store, 0, len(cl.Storage))
	for _, n := range cl.Storage {
		store := kv.NewMemory()
		stores = append(stores, store)
		core.NewStorageNode(n.ID, n.DC, net, cl, cfg, store)
	}
	shard := cl.Shard(key)
	for j, n := range cl.Storage {
		if n.Index == shard {
			_ = stores[j].Put(key, record.Value{Attrs: map[string]int64{"units": stock}}, 1)
		}
	}

	coords := make([]*core.Coordinator, sc.Sessions)
	for i, c := range cl.Clients {
		coords[i] = core.NewCoordinator(c.ID, c.DC, net, cl, cfg)
	}
	end := net.Now().Add(sc.Measure)
	for ci := range coords {
		ci := ci
		var loop func()
		loop = func() {
			if !net.Now().Before(end) {
				return
			}
			coords[ci].Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -1})},
				func(r core.CommitResult) {
					if r.Committed {
						res.Commits++
					}
					loop()
				})
		}
		net.At(0, loop)
	}
	net.RunFor(sc.Measure + 5*time.Second)
	if res.SyncMsgs > 0 {
		res.SyncBPM = float64(res.SyncBytes) / float64(res.SyncMsgs)
	}
	if res.PhaseMsgs > 0 {
		res.PhaseBPM = float64(res.PhaseBytes) / float64(res.PhaseMsgs)
	}
	return res
}
