package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/wal"
)

// The durability benchmark: what acknowledged durability actually
// costs, and what checkpoints buy at recovery.
//
// The write arms commit the same record stream through three sync
// disciplines — an fsync per append (the naive durable baseline),
// group commit (concurrent appends coalesced under one fsync), and
// NoSync (the upper bound: what the log costs with durability turned
// off). Real disk, real fsyncs, concurrent committers. The recovery
// arms build the same durable state twice — once as a bare log, once
// checkpointed — crash it (drop the handles), and measure the reopen:
// full-log replay versus newest-snapshot-plus-bounded-tail.

// DurabilityScale sizes the benchmark.
type DurabilityScale struct {
	Workers     int // concurrent committers per write arm
	AppendsPer  int // appends per worker per write arm
	Payload     int // bytes per record
	RecoveryOps int // puts when building the recovery state
	Checkpoint  int // puts between checkpoints in the checkpointed arm
	Keys        int // distinct keys the recovery puts cycle over
}

// DurabilityPaperScale is the full-size run.
func DurabilityPaperScale() DurabilityScale {
	return DurabilityScale{Workers: 8, AppendsPer: 250, Payload: 160, RecoveryOps: 200000, Checkpoint: 20000, Keys: 512}
}

// DurabilityQuickScale is the CI smoke size.
func DurabilityQuickScale() DurabilityScale {
	return DurabilityScale{Workers: 8, AppendsPer: 50, Payload: 160, RecoveryOps: 20000, Checkpoint: 5000, Keys: 128}
}

// DurabilityArm is one write-arm measurement.
type DurabilityArm struct {
	Mode          string // fsync-per-append | group-commit | nosync
	Workers       int
	Appends       int64
	WallMs        float64
	AppendsPerSec float64
	Syncs         int64   // fsyncs issued
	SyncedAppends int64   // appends covered by those fsyncs
	MaxBatch      int64   // largest group-commit batch under one fsync
	BatchMean     float64 // SyncedAppends / Syncs
}

// RecoveryArm is one reopen measurement.
type RecoveryArm struct {
	Mode         string // full-log-replay | snapshot+tail
	Ops          int
	Checkpoints  int
	UsedSnapshot bool
	TailRecords  int64
	ReplayMs     float64
}

// DurabilityResult is the JSON artifact (BENCH_durability.json).
type DurabilityResult struct {
	Quick    bool
	Arms     []DurabilityArm
	Recovery []RecoveryArm
}

// DurabilityBench runs every arm under a fresh temp dir and returns
// the result.
func DurabilityBench(sc DurabilityScale) (*DurabilityResult, error) {
	root, err := os.MkdirTemp("", "mdcc-durability-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	res := &DurabilityResult{}
	for _, mode := range []string{"fsync-per-append", "group-commit", "nosync"} {
		arm, err := writeArm(root, mode, sc)
		if err != nil {
			return nil, err
		}
		res.Arms = append(res.Arms, arm)
	}
	for _, checkpointed := range []bool{false, true} {
		arm, err := recoveryArm(root, sc, checkpointed)
		if err != nil {
			return nil, err
		}
		res.Recovery = append(res.Recovery, arm)
	}
	return res, nil
}

func writeArm(root, mode string, sc DurabilityScale) (DurabilityArm, error) {
	opts := wal.Options{}
	switch mode {
	case "group-commit":
		opts.GroupCommit = true
	case "nosync":
		opts.NoSync = true
	}
	dir, err := os.MkdirTemp(root, mode+"-")
	if err != nil {
		return DurabilityArm{}, err
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		return DurabilityArm{}, err
	}
	payload := make([]byte, sc.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	start := time.Now()
	for w := 0; w < sc.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sc.AppendsPer; i++ {
				if err := l.Append(payload); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	st := l.Stats()
	if err := l.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return DurabilityArm{}, fmt.Errorf("bench: %s arm: %w", mode, firstErr)
	}
	arm := DurabilityArm{
		Mode:          mode,
		Workers:       sc.Workers,
		Appends:       st.Appends,
		WallMs:        float64(wall) / float64(time.Millisecond),
		AppendsPerSec: float64(st.Appends) / wall.Seconds(),
		Syncs:         st.Syncs,
		SyncedAppends: st.SyncedAppends,
		MaxBatch:      st.MaxBatch,
	}
	if st.Syncs > 0 {
		arm.BatchMean = float64(st.SyncedAppends) / float64(st.Syncs)
	}
	return arm, nil
}

// recoveryArm builds a durable replica state of sc.RecoveryOps puts
// (NoSync: the build is scaffolding, the reopen is the measurement),
// optionally checkpointing every sc.Checkpoint puts, then drops the
// handle as a crash would and times the reopen.
func recoveryArm(root string, sc DurabilityScale, checkpointed bool) (RecoveryArm, error) {
	name := "recovery-log-"
	if checkpointed {
		name = "recovery-ckpt-"
	}
	dir, err := os.MkdirTemp(root, name)
	if err != nil {
		return RecoveryArm{}, err
	}
	opts := core.DurableOptions{NoSync: true, SegmentSize: 1 << 20}
	ds, err := core.OpenDurableOpts(dir, opts)
	if err != nil {
		return RecoveryArm{}, err
	}
	arm := RecoveryArm{Mode: "full-log-replay", Ops: sc.RecoveryOps}
	if checkpointed {
		arm.Mode = "snapshot+tail"
	}
	val := record.Value{Attrs: map[string]int64{"bal": 0}}
	for i := 0; i < sc.RecoveryOps; i++ {
		key := record.Key(fmt.Sprintf("acct/%05d", i%sc.Keys))
		val.Attrs["bal"] = int64(i)
		if err := ds.Store.Put(key, val, record.Version(i/sc.Keys+1)); err != nil {
			return RecoveryArm{}, err
		}
		if checkpointed && (i+1)%sc.Checkpoint == 0 {
			if err := ds.Checkpoint(nil); err != nil {
				return RecoveryArm{}, err
			}
			arm.Checkpoints++
		}
	}
	// Crash: drop the handle without a clean shutdown ritual (Close
	// only flushes; the reopen path must not depend on it anyway).
	if err := ds.Close(); err != nil {
		return RecoveryArm{}, err
	}
	ds2, err := core.OpenDurableOpts(dir, opts)
	if err != nil {
		return RecoveryArm{}, err
	}
	defer ds2.Close()
	rs := ds2.RecoveryStats()
	arm.UsedSnapshot = rs.UsedSnapshot
	arm.TailRecords = rs.TailStore + rs.TailOplog
	arm.ReplayMs = float64(rs.Duration) / float64(time.Millisecond)
	// Sanity: the rebuilt store must hold every key at its final value.
	probe := record.Key(fmt.Sprintf("acct/%05d", 0))
	if _, _, ok := ds2.Store.Get(probe); !ok {
		return RecoveryArm{}, fmt.Errorf("bench: recovery arm lost %s", probe)
	}
	return arm, nil
}
