package record

import (
	"testing"
	"testing/quick"
)

func TestValueCloneIndependent(t *testing.T) {
	v := Value{Attrs: map[string]int64{"stock": 5}, Blob: []byte("row")}
	c := v.Clone()
	c.Attrs["stock"] = 99
	c.Blob[0] = 'X'
	if v.Attrs["stock"] != 5 || v.Blob[0] != 'r' {
		t.Fatal("Clone shares storage with original")
	}
	if !v.Equal(v.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestValueEqual(t *testing.T) {
	a := Value{Attrs: map[string]int64{"x": 1}}
	b := Value{Attrs: map[string]int64{"x": 1}}
	if !a.Equal(b) {
		t.Fatal("equal values reported unequal")
	}
	cases := []Value{
		{Attrs: map[string]int64{"x": 2}},
		{Attrs: map[string]int64{"y": 1}},
		{Attrs: map[string]int64{"x": 1, "y": 0}},
		{Attrs: map[string]int64{"x": 1}, Blob: []byte{1}},
		{Attrs: map[string]int64{"x": 1}, Tombstone: true},
	}
	for i, c := range cases {
		if a.Equal(c) {
			t.Fatalf("case %d: unequal values reported equal", i)
		}
	}
}

func TestWithAttr(t *testing.T) {
	var v Value // nil attrs
	w := v.WithAttr("stock", 7)
	if w.Attr("stock") != 7 {
		t.Fatalf("WithAttr: got %d", w.Attr("stock"))
	}
	if v.Attrs != nil {
		t.Fatal("WithAttr mutated receiver")
	}
	if v.Attr("missing") != 0 {
		t.Fatal("Attr on missing name should be 0")
	}
}

func TestPhysicalApply(t *testing.T) {
	cur := Value{Attrs: map[string]int64{"stock": 10}}
	u := Physical("item/1", 3, Value{Attrs: map[string]int64{"stock": 1}})
	got := u.Apply(cur)
	if got.Attr("stock") != 1 {
		t.Fatalf("physical apply = %v", got)
	}
	if cur.Attr("stock") != 10 {
		t.Fatal("Apply mutated current value")
	}
}

func TestCommutativeApply(t *testing.T) {
	cur := Value{Attrs: map[string]int64{"stock": 10}}
	u := Commutative("item/1", map[string]int64{"stock": -3, "sold": 3})
	got := u.Apply(cur)
	if got.Attr("stock") != 7 || got.Attr("sold") != 3 {
		t.Fatalf("commutative apply = %v", got)
	}
	// Apply to empty value creates attrs.
	got2 := u.Apply(Value{})
	if got2.Attr("stock") != -3 {
		t.Fatalf("commutative apply on empty = %v", got2)
	}
}

func TestCommutativeCopiesDeltas(t *testing.T) {
	deltas := map[string]int64{"stock": -1}
	u := Commutative("k", deltas)
	deltas["stock"] = -99
	if u.Deltas["stock"] != -1 {
		t.Fatal("Commutative aliased caller's map")
	}
}

func TestCommutativeApplyOrderIndependent(t *testing.T) {
	f := func(d1, d2 int64, base int64) bool {
		cur := Value{Attrs: map[string]int64{"x": base}}
		u1 := Commutative("k", map[string]int64{"x": d1})
		u2 := Commutative("k", map[string]int64{"x": d2})
		a := u2.Apply(u1.Apply(cur))
		b := u1.Apply(u2.Apply(cur))
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDelete(t *testing.T) {
	ins := Insert("item/9", Value{Attrs: map[string]int64{"stock": 4}})
	if ins.ReadVersion != 0 || ins.Kind != KindPhysical {
		t.Fatalf("Insert = %+v", ins)
	}
	del := Delete("item/9", 5)
	if !del.NewValue.Tombstone || del.ReadVersion != 5 {
		t.Fatalf("Delete = %+v", del)
	}
	got := del.Apply(Value{Attrs: map[string]int64{"stock": 4}})
	if !got.Tombstone {
		t.Fatal("delete apply should produce a tombstone")
	}
}

func TestConstraint(t *testing.T) {
	c := MinBound("stock", 0)
	if !c.Satisfied(0) || !c.Satisfied(5) || c.Satisfied(-1) {
		t.Fatalf("MinBound misbehaves: %s", c)
	}
	u := MaxBound("stock", 10)
	if !u.Satisfied(10) || u.Satisfied(11) {
		t.Fatalf("MaxBound misbehaves: %s", u)
	}
	b := Bound("stock", 0, 10)
	if b.Satisfied(-1) || b.Satisfied(11) || !b.Satisfied(5) {
		t.Fatalf("Bound misbehaves: %s", b)
	}
	var free Constraint
	if !free.Satisfied(-1 << 40) {
		t.Fatal("unconstrained should accept anything")
	}
}

func TestStringForms(t *testing.T) {
	if (Value{}).String() == "" {
		t.Fatal("empty value String")
	}
	if (Value{Tombstone: true}).String() != "<tombstone>" {
		t.Fatal("tombstone String")
	}
	for _, s := range []string{
		Physical("k", 1, Value{}).String(),
		Commutative("k", map[string]int64{"a": 1, "b": -2}).String(),
		MinBound("x", 0).String(),
		MaxBound("x", 9).String(),
		Bound("x", 0, 9).String(),
		Constraint{Attr: "x"}.String(),
	} {
		if s == "" {
			t.Fatal("empty String form")
		}
	}
}
