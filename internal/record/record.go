// Package record defines the data model shared by every protocol in
// the repository: versioned record values, physical and commutative
// updates (the paper's vread→vwrite updates and delta updates), and
// attribute value constraints enforced by quorum demarcation.
package record

import (
	"fmt"
	"sort"
	"strings"
)

// Key identifies a record (the paper's primary key). Tables are
// encoded as key prefixes, e.g. "item/0000042".
type Key string

// Version is the per-record Paxos instance number: version v is the
// state after v learned-and-executed options, so a fresh record is at
// version 0 and the first committed update produces version 1.
type Version uint64

// Value is a record's contents: named integer attributes (which
// commutative deltas may target) plus an opaque payload for everything
// else. A nil/zero Value with Tombstone unset represents "not present".
type Value struct {
	// Attrs holds numeric attributes, e.g. {"stock": 17}.
	Attrs map[string]int64
	// Blob is the uninterpreted remainder of the row.
	Blob []byte
	// Tombstone marks a deleted record (deletes are handled as
	// normal updates that mark the item deleted, per §3.2.1).
	Tombstone bool
}

// Clone returns a deep copy of v.
func (v Value) Clone() Value {
	out := Value{Tombstone: v.Tombstone}
	if v.Attrs != nil {
		out.Attrs = make(map[string]int64, len(v.Attrs))
		for k, a := range v.Attrs {
			out.Attrs[k] = a
		}
	}
	if v.Blob != nil {
		out.Blob = append([]byte(nil), v.Blob...)
	}
	return out
}

// Attr returns the named numeric attribute (0 if absent).
func (v Value) Attr(name string) int64 {
	return v.Attrs[name]
}

// WithAttr returns a copy of v with the named attribute set.
func (v Value) WithAttr(name string, x int64) Value {
	out := v.Clone()
	if out.Attrs == nil {
		out.Attrs = make(map[string]int64, 1)
	}
	out.Attrs[name] = x
	return out
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Tombstone != o.Tombstone {
		return false
	}
	if len(v.Attrs) != len(o.Attrs) {
		return false
	}
	for k, a := range v.Attrs {
		if b, ok := o.Attrs[k]; !ok || a != b {
			return false
		}
	}
	if len(v.Blob) != len(o.Blob) {
		return false
	}
	for i := range v.Blob {
		if v.Blob[i] != o.Blob[i] {
			return false
		}
	}
	return true
}

// String renders a short debug form.
func (v Value) String() string {
	if v.Tombstone {
		return "<tombstone>"
	}
	names := make([]string, 0, len(v.Attrs))
	for k := range v.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, v.Attrs[k])
	}
	if len(v.Blob) > 0 {
		fmt.Fprintf(&b, " blob(%dB)", len(v.Blob))
	}
	b.WriteByte('}')
	return b.String()
}

// UpdateKind discriminates Update variants.
type UpdateKind uint8

// Update kinds.
const (
	// KindPhysical is a whole-value write validated against the read
	// version (vread → vwrite in the paper). Inserts are physical
	// updates with ReadVersion 0 on a non-existent record; deletes
	// write a tombstone value.
	KindPhysical UpdateKind = iota + 1
	// KindCommutative applies attribute deltas, subject to declared
	// constraints, and commutes with other commutative updates.
	KindCommutative
	// KindReadCheck validates that a record still has the version the
	// transaction read, without writing anything — the read-set
	// validation extension of §4.4 that upgrades the isolation level
	// towards serializability. Read checks commute with each other
	// and execute as no-ops.
	KindReadCheck
)

// Update is one write of a transaction's write-set.
type Update struct {
	Kind UpdateKind
	Key  Key

	// Physical fields.
	ReadVersion Version // version the transaction read (0 = expects absent/fresh)
	NewValue    Value

	// Commutative fields: attribute → signed delta.
	Deltas map[string]int64

	// Merged is the number of client delta updates a gateway coalesced
	// into this one commutative update (0 and 1 both mean "a single
	// client update"). A committed merged update advances the record
	// version by Span, so per-client-update version accounting — and
	// the invariant "version v = state after v executed client updates"
	// — stays exact across coalescing.
	Merged int
}

// Physical builds a physical update.
func Physical(key Key, readVersion Version, newValue Value) Update {
	return Update{Kind: KindPhysical, Key: key, ReadVersion: readVersion, NewValue: newValue}
}

// Insert builds a physical update that requires the record to be
// absent (missing vread per §3.2.1).
func Insert(key Key, value Value) Update {
	return Update{Kind: KindPhysical, Key: key, ReadVersion: 0, NewValue: value}
}

// Delete builds a physical update writing a tombstone.
func Delete(key Key, readVersion Version) Update {
	return Update{Kind: KindPhysical, Key: key, ReadVersion: readVersion, NewValue: Value{Tombstone: true}}
}

// Commutative builds a delta update, e.g. Commutative("item/7",
// map[string]int64{"stock": -2}).
func Commutative(key Key, deltas map[string]int64) Update {
	cp := make(map[string]int64, len(deltas))
	for k, d := range deltas {
		cp[k] = d
	}
	return Update{Kind: KindCommutative, Key: key, Deltas: cp}
}

// MergedCommutative builds a delta update representing merged client
// updates whose deltas sum to deltas: a gateway coalesces a hot-key
// stampede into one Paxos option per window this way. The version
// advances by merged on commit (see Span).
func MergedCommutative(key Key, deltas map[string]int64, merged int) Update {
	up := Commutative(key, deltas)
	up.Merged = merged
	return up
}

// Span is how many versions a committed update advances its record:
// 1, except for merged commutative updates which advance by the
// number of client updates they carry.
func (u Update) Span() Version {
	if u.Kind == KindCommutative && u.Merged > 1 {
		return Version(u.Merged)
	}
	return 1
}

// ReadCheck builds a read-set validation: the transaction commits
// only if key is still at readVersion.
func ReadCheck(key Key, readVersion Version) Update {
	return Update{Kind: KindReadCheck, Key: key, ReadVersion: readVersion}
}

// String renders a short debug form.
func (u Update) String() string {
	switch u.Kind {
	case KindPhysical:
		return fmt.Sprintf("phys(%s v%d->%s)", u.Key, u.ReadVersion, u.NewValue)
	case KindCommutative:
		names := make([]string, 0, len(u.Deltas))
		for k := range u.Deltas {
			names = append(names, k)
		}
		sort.Strings(names)
		var b strings.Builder
		fmt.Fprintf(&b, "comm(%s", u.Key)
		if u.Merged > 1 {
			fmt.Fprintf(&b, " x%d", u.Merged)
		}
		for _, k := range names {
			fmt.Fprintf(&b, " %s%+d", k, u.Deltas[k])
		}
		b.WriteByte(')')
		return b.String()
	case KindReadCheck:
		return fmt.Sprintf("readcheck(%s v%d)", u.Key, u.ReadVersion)
	default:
		return fmt.Sprintf("update(kind=%d)", u.Kind)
	}
}

// Apply returns the value after applying u to cur. Physical updates
// replace the value; commutative updates add deltas (creating the
// attribute map if needed).
func (u Update) Apply(cur Value) Value {
	switch u.Kind {
	case KindPhysical:
		return u.NewValue.Clone()
	case KindCommutative:
		out := cur.Clone()
		if out.Attrs == nil {
			out.Attrs = make(map[string]int64, len(u.Deltas))
		}
		for k, d := range u.Deltas {
			out.Attrs[k] += d
		}
		return out
	case KindReadCheck:
		return cur // validation only, never a write
	default:
		return cur
	}
}

// Constraint bounds a numeric attribute of every record in a table
// (e.g. stock >= 0). Nil bounds are unbounded.
type Constraint struct {
	Attr string
	Min  *int64
	Max  *int64
}

// MinBound is a helper to build "attr >= min" constraints.
func MinBound(attr string, min int64) Constraint {
	m := min
	return Constraint{Attr: attr, Min: &m}
}

// MaxBound is a helper to build "attr <= max" constraints.
func MaxBound(attr string, max int64) Constraint {
	m := max
	return Constraint{Attr: attr, Max: &m}
}

// Bound is a helper to build "min <= attr <= max" constraints.
func Bound(attr string, min, max int64) Constraint {
	lo, hi := min, max
	return Constraint{Attr: attr, Min: &lo, Max: &hi}
}

// Satisfied reports whether value x of the constrained attribute is
// within bounds.
func (c Constraint) Satisfied(x int64) bool {
	if c.Min != nil && x < *c.Min {
		return false
	}
	if c.Max != nil && x > *c.Max {
		return false
	}
	return true
}

// String renders the constraint.
func (c Constraint) String() string {
	switch {
	case c.Min != nil && c.Max != nil:
		return fmt.Sprintf("%d<=%s<=%d", *c.Min, c.Attr, *c.Max)
	case c.Min != nil:
		return fmt.Sprintf("%s>=%d", c.Attr, *c.Min)
	case c.Max != nil:
		return fmt.Sprintf("%s<=%d", c.Attr, *c.Max)
	default:
		return c.Attr + " unconstrained"
	}
}
