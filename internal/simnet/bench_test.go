package simnet

import (
	"fmt"
	"testing"
	"time"

	"mdcc/internal/transport"
)

// benchNet builds a self-sustaining message mesh: every delivery
// forwards one message, an eighth of the traffic fans into a small
// hot set (deeper queues → the busy-node clamp path), and each node
// keeps a periodic timer armed — the simulator's real workload shape
// (storage mesh + gateway hot spots + protocol timers).
func benchNet(engine string, nodes, inflight int) *Net {
	n := New(Options{
		Latency:     func(from, to transport.NodeID) time.Duration { return time.Millisecond },
		JitterFrac:  0.1,
		ServiceTime: 100 * time.Microsecond,
		Seed:        7,
		Engine:      engine,
	})
	ids := make([]transport.NodeID, nodes)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%04d", i))
	}
	for i := range ids {
		i := i
		id := ids[i]
		n.Register(id, func(e transport.Envelope) {
			p := e.Msg.(ping)
			next := ids[(i*7+p.Seq)%nodes]
			if p.Seq&7 == 0 {
				hot := nodes / 32
				if hot == 0 {
					hot = 1
				}
				next = ids[p.Seq%hot]
			}
			n.Send(id, next, ping{Seq: p.Seq + 1})
		})
		var tick func()
		tick = func() { n.After(id, 750*time.Microsecond, tick) }
		n.After(id, 750*time.Microsecond, tick)
	}
	for i := 0; i < inflight*nodes; i++ {
		n.Send(ids[i%nodes], ids[(i*13+5)%nodes], ping{Seq: i})
	}
	return n
}

func benchSteps(b *testing.B, engine string, nodes, inflight int) {
	n := benchNet(engine, nodes, inflight)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.Step() {
			b.Fatal("event queue drained mid-benchmark")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimnetStep compares events/sec of the legacy global heap
// against the sharded engine at 10/100/1000 nodes.
func BenchmarkSimnetStep(b *testing.B) {
	for _, nodes := range []int{10, 100, 1000} {
		for _, engine := range []string{"heap", "sharded"} {
			b.Run(fmt.Sprintf("%s/%dnodes", engine, nodes), func(b *testing.B) {
				benchSteps(b, engine, nodes, 8)
			})
		}
	}
}

// BenchmarkSimnet1000Nodes is the headline number: the ≥5x
// events/sec claim at thousand-node scale is heap vs sharded here.
func BenchmarkSimnet1000Nodes(b *testing.B) {
	for _, engine := range []string{"heap", "sharded"} {
		b.Run(engine, func(b *testing.B) {
			benchSteps(b, engine, 1000, 8)
		})
	}
}
