package simnet

import (
	"testing"
	"time"

	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

type ping struct{ Seq int }

func fixedLatency(d time.Duration) transport.LatencyFunc {
	return func(from, to transport.NodeID) time.Duration { return d }
}

func TestDeliveryAfterLatency(t *testing.T) {
	n := New(Options{Latency: fixedLatency(100 * time.Millisecond)})
	var deliveredAt time.Time
	n.Register("b", func(e transport.Envelope) { deliveredAt = n.Now() })
	start := n.Now()
	n.Send("a", "b", ping{})
	n.Run()
	if d := deliveredAt.Sub(start); d != 100*time.Millisecond {
		t.Fatalf("delivered after %v, want 100ms", d)
	}
	if n.Stats().Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1", n.Stats().Delivered)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []time.Duration {
		n := New(Options{Latency: fixedLatency(50 * time.Millisecond), JitterFrac: 0.2, Seed: 7})
		var times []time.Duration
		start := n.Now()
		n.Register("b", func(e transport.Envelope) {
			times = append(times, n.Now().Sub(start))
		})
		for i := 0; i < 20; i++ {
			n.Send("a", "b", ping{Seq: i})
		}
		n.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lost messages: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJitterBounds(t *testing.T) {
	n := New(Options{Latency: fixedLatency(100 * time.Millisecond), JitterFrac: 0.1, Seed: 3})
	start := n.Now()
	var times []time.Duration
	n.Register("b", func(e transport.Envelope) { times = append(times, n.Now().Sub(start)) })
	for i := 0; i < 100; i++ {
		n.Send("a", "b", ping{})
	}
	n.Run()
	for _, d := range times {
		if d < 90*time.Millisecond || d > 110*time.Millisecond {
			t.Fatalf("jittered delivery at %v outside ±10%%", d)
		}
	}
}

func TestServiceTimeQueueing(t *testing.T) {
	// 10 messages arrive simultaneously; with 1ms service time the
	// last should be handled ~9ms after the first.
	n := New(Options{Latency: fixedLatency(10 * time.Millisecond), ServiceTime: time.Millisecond})
	var handled []time.Duration
	start := n.Now()
	n.Register("b", func(e transport.Envelope) { handled = append(handled, n.Now().Sub(start)) })
	for i := 0; i < 10; i++ {
		n.Send("a", "b", ping{Seq: i})
	}
	n.Run()
	if len(handled) != 10 {
		t.Fatalf("handled %d messages", len(handled))
	}
	if handled[0] != 10*time.Millisecond {
		t.Fatalf("first handled at %v", handled[0])
	}
	if last := handled[9]; last < 19*time.Millisecond {
		t.Fatalf("last handled at %v, want >= 19ms (queueing)", last)
	}
}

func TestServiceTimeIndependentNodes(t *testing.T) {
	// Queueing on one node must not delay another.
	n := New(Options{Latency: fixedLatency(time.Millisecond), ServiceTime: 10 * time.Millisecond})
	var cAt time.Duration
	start := n.Now()
	n.Register("b", func(e transport.Envelope) {})
	n.Register("c", func(e transport.Envelope) { cAt = n.Now().Sub(start) })
	for i := 0; i < 5; i++ {
		n.Send("a", "b", ping{})
	}
	n.Send("a", "c", ping{})
	n.Run()
	if cAt > 2*time.Millisecond {
		t.Fatalf("node c delayed to %v by node b's queue", cAt)
	}
}

func TestDropProb(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond), DropProb: 1.0})
	n.Register("b", func(e transport.Envelope) { t.Fatal("dropped message delivered") })
	n.Send("a", "b", ping{})
	n.Run()
	if n.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Stats().Dropped)
	}
}

func TestFailRecover(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond)})
	got := 0
	n.Register("b", func(e transport.Envelope) { got++ })
	n.Fail("b")
	n.Send("a", "b", ping{})
	n.Run()
	if got != 0 {
		t.Fatal("failed node received a message")
	}
	n.Recover("b")
	n.Send("a", "b", ping{})
	n.Run()
	if got != 1 {
		t.Fatal("recovered node did not receive")
	}
	// Failed senders drop too.
	n.Fail("a")
	n.Send("a", "b", ping{})
	n.Run()
	if got != 1 {
		t.Fatal("failed sender's message was delivered")
	}
	if !n.Failed("a") || n.Failed("b") {
		t.Fatal("Failed() bookkeeping wrong")
	}
}

func TestFailSuppressesInFlight(t *testing.T) {
	// A message already in flight to a node that fails before
	// delivery must not be handled.
	n := New(Options{Latency: fixedLatency(100 * time.Millisecond)})
	got := 0
	n.Register("b", func(e transport.Envelope) { got++ })
	n.Send("a", "b", ping{})
	n.At(10*time.Millisecond, func() { n.Fail("b") })
	n.Run()
	if got != 0 {
		t.Fatal("in-flight message delivered to failed node")
	}
}

func TestTimerFireAndStop(t *testing.T) {
	n := New(Options{})
	fired := 0
	n.Register("a", func(transport.Envelope) {})
	n.After("a", 5*time.Millisecond, func() { fired++ })
	tm := n.After("a", 6*time.Millisecond, func() { fired += 100 })
	if !tm.Stop() {
		t.Fatal("Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	n.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestTimerOnFailedNodeStillFiresButSendsDrop(t *testing.T) {
	// Fail models a partition, not a crash: local timers keep
	// running, but anything the isolated node sends is dropped.
	n := New(Options{Latency: fixedLatency(time.Millisecond)})
	fired := false
	received := false
	n.Register("b", func(transport.Envelope) { received = true })
	n.Register("a", func(transport.Envelope) {})
	n.After("a", 5*time.Millisecond, func() {
		fired = true
		n.Send("a", "b", ping{})
	})
	n.Fail("a")
	n.Run()
	if !fired {
		t.Fatal("partitioned node's timer did not fire")
	}
	if received {
		t.Fatal("partitioned node's send was delivered")
	}
}

func TestRunFor(t *testing.T) {
	n := New(Options{})
	fired := []int{}
	n.Register("a", func(transport.Envelope) {})
	n.After("a", 10*time.Millisecond, func() { fired = append(fired, 1) })
	n.After("a", 30*time.Millisecond, func() { fired = append(fired, 2) })
	n.RunFor(20 * time.Millisecond)
	if len(fired) != 1 {
		t.Fatalf("RunFor(20ms) fired %v", fired)
	}
	if got := n.Now().Sub(time.Unix(0, 0)); got != 20*time.Millisecond {
		t.Fatalf("Now after RunFor = %v, want 20ms", got)
	}
	n.RunFor(20 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("second RunFor fired %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	n := New(Options{})
	count := 0
	n.Register("a", func(transport.Envelope) {})
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			n.After("a", time.Millisecond, tick)
		}
	}
	n.After("a", time.Millisecond, tick)
	if !n.RunUntil(func() bool { return count >= 5 }, time.Second) {
		t.Fatal("RunUntil did not reach condition")
	}
	if count < 5 || count > 6 {
		t.Fatalf("count = %d, want ~5", count)
	}
	if n.RunUntil(func() bool { return count >= 100 }, 2*time.Millisecond) {
		t.Fatal("RunUntil claimed success past deadline")
	}
}

func TestSelfMessagesAndChains(t *testing.T) {
	// A request-reply chain across topology latencies.
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 1, ClientDC: int(topology.USWest)})
	n := New(Options{Latency: cl.Latency()})
	client := topology.ClientID(0)
	east := topology.StorageID(topology.USEast, 0)
	var rtt time.Duration
	start := n.Now()
	n.Register(east, func(e transport.Envelope) {
		n.Send(east, e.From, ping{Seq: 1})
	})
	n.Register(client, func(e transport.Envelope) {
		rtt = n.Now().Sub(start)
	})
	n.Send(client, east, ping{Seq: 0})
	n.Run()
	want := topology.RTT(topology.USWest, topology.USEast)
	if rtt != want {
		t.Fatalf("virtual RTT = %v, want %v", rtt, want)
	}
}

func TestStopAbortsRun(t *testing.T) {
	n := New(Options{})
	n.Register("a", func(transport.Envelope) {})
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 3 {
			n.Stop()
		}
		n.After("a", time.Millisecond, tick)
	}
	n.After("a", time.Millisecond, tick)
	n.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt Run: count = %d", count)
	}
}

func TestAtNeverSchedulesInPast(t *testing.T) {
	n := New(Options{})
	n.Register("a", func(transport.Envelope) {})
	n.RunFor(50 * time.Millisecond)
	ran := false
	n.At(10*time.Millisecond, func() { ran = true }) // offset already passed
	n.Run()
	if !ran {
		t.Fatal("past-offset At callback never ran")
	}
}
