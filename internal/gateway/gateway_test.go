package gateway

import (
	"testing"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// testWorld is a five-DC deployment on the deterministic simulator
// with one gateway in us-west.
type testWorld struct {
	net    *simnet.Net
	cl     *topology.Cluster
	cfg    core.Config
	nodes  []*core.StorageNode
	stores []*kv.Store
	gw     *Gateway
}

func newTestWorld(t *testing.T, tun Tuning, cons []record.Constraint) *testWorld {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 0, ClientDC: -1})
	extra := map[transport.NodeID]topology.DC{}
	for _, id := range NodeIDs(topology.USWest, tun) {
		extra[id] = topology.USWest
	}
	net := simnet.New(simnet.Options{
		Latency:     cl.LatencyWith(extra),
		JitterFrac:  0.05,
		ServiceTime: 100 * time.Microsecond,
		Seed:        1,
	})
	cfg := core.Defaults(core.ModeMDCC)
	cfg.Constraints = cons
	w := &testWorld{net: net, cl: cl, cfg: cfg}
	for _, n := range cl.Storage {
		store := kv.NewMemory()
		w.stores = append(w.stores, store)
		w.nodes = append(w.nodes, core.NewStorageNode(n.ID, n.DC, net, cl, cfg, store))
	}
	w.gw = New(topology.USWest, net, cl, cfg, tun)
	return w
}

// preload writes a record into every replica of its shard at version 1.
func (w *testWorld) preload(key record.Key, val record.Value) {
	shard := w.cl.Shard(key)
	for i, n := range w.cl.Storage {
		if n.Index == shard {
			_ = w.stores[i].Put(key, val, 1)
		}
	}
}

// state reads the freshest committed replica state of key.
func (w *testWorld) state(key record.Key) (record.Value, record.Version) {
	shard := w.cl.Shard(key)
	var bestVal record.Value
	var bestVer record.Version
	for i, n := range w.cl.Storage {
		if n.Index != shard {
			continue
		}
		if val, ver, ok := w.stores[i].Get(key); ok && ver > bestVer {
			bestVal, bestVer = val, ver
		}
	}
	return bestVal, bestVer
}

// TestCoalescingMergesHotKeyStampede drives a concurrent decrement
// stampede against one hot key and verifies (a) every transaction
// settles committed, (b) the deltas and the per-client-update version
// accounting are conserved through merged options, and (c) the
// stampede actually coalesced into far fewer Paxos options.
func TestCoalescingMergesHotKeyStampede(t *testing.T) {
	const n = 200
	key := record.Key("stock/hot")
	w := newTestWorld(t, Tuning{}, []record.Constraint{record.MinBound("units", 0)})
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 1_000_000}})

	// Warm the headroom account: admission is conservative (no
	// merging) until the first piggybacked escrow snapshot arrives,
	// and a read reply carries one.
	w.net.At(0, func() { w.gw.Read(key, func(record.Value, record.Version, bool) {}) })
	w.net.RunFor(2 * time.Second)

	commits, aborts, settled := 0, 0, 0
	w.net.At(0, func() {
		for i := 0; i < n; i++ {
			w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -1})},
				func(ok bool, err error) {
					settled++
					if err != nil {
						t.Errorf("unexpected gateway error: %v", err)
					}
					if ok {
						commits++
					} else {
						aborts++
					}
				})
		}
	})
	w.net.RunFor(10 * time.Second)

	if settled != n {
		t.Fatalf("settled %d of %d transactions", settled, n)
	}
	if commits != n {
		t.Fatalf("commits %d aborts %d, want all %d committed (headroom is huge)", commits, aborts, n)
	}
	val, ver := w.state(key)
	if got := val.Attr("units"); got != 1_000_000-n {
		t.Errorf("units = %d, want %d (delta conservation through merging)", got, 1_000_000-n)
	}
	if want := record.Version(1 + n); ver != want {
		t.Errorf("version = %d, want %d (merged options must advance by their span)", ver, want)
	}
	m := w.gw.Metrics()
	if m.MergedOptions == 0 || m.MergedUpdates < n/2 {
		t.Errorf("expected heavy coalescing, got %+v", m)
	}
	if m.Commits != n {
		t.Errorf("gateway commit counter = %d, want %d", m.Commits, n)
	}
	// Cross-transaction batching must have produced real envelopes and
	// the acceptors must have unpacked them.
	if m.BatchEnvelopes == 0 || m.BatchFanIn < 1.5 {
		t.Errorf("expected outbound batch envelopes, got %+v", m)
	}
	var env, items int64
	for _, node := range w.nodes {
		nm := node.Metrics()
		env += nm.BatchEnvelopes
		items += nm.BatchItems
	}
	if env == 0 || items < env*2 {
		t.Errorf("acceptors saw %d batch envelopes carrying %d messages, want fan-in >= 2", env, items)
	}
}

// TestMergeSplitOnScarceStock exhausts a scarce key: the merged
// option overdraws and must be split so individually-viable
// transactions still commit, the constraint holds, and nothing is
// double-applied.
func TestMergeSplitOnScarceStock(t *testing.T) {
	const n = 10
	key := record.Key("stock/scarce")
	w := newTestWorld(t, Tuning{}, []record.Constraint{record.MinBound("units", 0)})
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 3}})

	commits, settled := 0, 0
	w.net.At(0, func() {
		for i := 0; i < n; i++ {
			w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -1})},
				func(ok bool, err error) {
					settled++
					if err != nil {
						t.Errorf("unexpected gateway error: %v", err)
					}
					if ok {
						commits++
					}
				})
		}
	})
	w.net.RunFor(30 * time.Second)

	if settled != n {
		t.Fatalf("settled %d of %d", settled, n)
	}
	if commits == 0 {
		t.Fatalf("no transaction committed; splitting should let some through")
	}
	val, _ := w.state(key)
	units := val.Attr("units")
	if units < 0 {
		t.Fatalf("constraint violated: units = %d", units)
	}
	if units != 3-int64(commits) {
		t.Errorf("units = %d with %d commits, want %d (conservation)", units, commits, 3-commits)
	}
}

// TestNoMergeBeforeFirstEscrowSnapshot pins the conservative
// bootstrap: with no escrow snapshot yet (the old code treated the
// missing state as unlimited headroom — even when the refresh read
// had failed), nothing may be merged; every update ships individually
// and the acceptors arbitrate. Once the first piggybacked snapshot
// lands (here: via the votes of that first wave), merging starts.
func TestNoMergeBeforeFirstEscrowSnapshot(t *testing.T) {
	const n = 50
	key := record.Key("stock/cold")
	w := newTestWorld(t, Tuning{}, []record.Constraint{record.MinBound("units", 0)})
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 100000}})

	settled := 0
	burst := func() {
		for i := 0; i < n; i++ {
			w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -1})},
				func(ok bool, err error) {
					settled++
					if err != nil || !ok {
						t.Errorf("unexpected outcome: ok=%v err=%v", ok, err)
					}
				})
		}
	}
	// Cold burst: submitted before any snapshot can possibly exist.
	w.net.At(0, burst)
	w.net.RunFor(5 * time.Second)
	m := w.gw.Metrics()
	if m.MergedOptions != 0 {
		t.Fatalf("cold burst merged %d options; admission must be conservative before the first snapshot", m.MergedOptions)
	}
	if m.CoalesceBypass != n {
		t.Errorf("cold burst bypassed %d of %d", m.CoalesceBypass, n)
	}
	if m.EscrowUpdates == 0 {
		t.Fatalf("no escrow snapshots piggybacked on the cold burst's votes: %+v", m)
	}
	// Warm burst: the first wave's votes delivered snapshots.
	w.net.At(0, burst)
	w.net.RunFor(5 * time.Second)
	if settled != 2*n {
		t.Fatalf("settled %d of %d", settled, 2*n)
	}
	m = w.gw.Metrics()
	if m.MergedOptions == 0 || m.MergedUpdates < n/2 {
		t.Errorf("warm burst did not coalesce: %+v", m)
	}
	if m.TrackedKeys == 0 || m.MinHeadroom < 0 {
		t.Errorf("headroom gauges not live: tracked=%d min=%d", m.TrackedKeys, m.MinHeadroom)
	}
}

// TestMixedSignWindowResolvesExactly pins per-waiter resolution: a
// window mixing increments and decrements on one attribute (restock +
// purchases) must retire the outstanding account to exactly zero —
// resolving the window's *net* sum against the sign-split account
// left phantom residue in both directions, monotonically shrinking
// headroom until coalescing self-disabled on the key.
func TestMixedSignWindowResolvesExactly(t *testing.T) {
	key := record.Key("stock/mixed")
	w := newTestWorld(t, Tuning{}, []record.Constraint{record.MinBound("units", 0)})
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 10000}})

	// Warm the headroom account so the mixed burst actually merges.
	w.net.At(0, func() { w.gw.Read(key, func(record.Value, record.Version, bool) {}) })
	w.net.RunFor(2 * time.Second)

	settled := 0
	w.net.At(0, func() {
		for i := 0; i < 10; i++ {
			d := int64(-5)
			if i%2 == 1 {
				d = 3
			}
			w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": d})},
				func(ok bool, err error) {
					settled++
					if err != nil || !ok {
						t.Errorf("unexpected outcome: ok=%v err=%v", ok, err)
					}
				})
		}
	})
	w.net.RunFor(5 * time.Second)
	if settled != 10 {
		t.Fatalf("settled %d of 10", settled)
	}
	if m := w.gw.Metrics(); m.MergedOptions == 0 {
		t.Fatalf("mixed burst did not merge: %+v", m)
	}
	w.gw.mu.Lock()
	ks := w.gw.keys[key]
	down, up := ks.outDown["units"], ks.outUp["units"]
	w.gw.mu.Unlock()
	if down != 0 || up != 0 {
		t.Fatalf("outstanding residue after all ops settled: outDown=%d outUp=%d", down, up)
	}
}

// TestUnconstrainedDeltasCoalesceCold pins that the conservative
// bootstrap applies only to constrained attributes: deltas with no
// declared constraint have no escrow to account, so they merge from
// the very first (cold) burst — no snapshot ever exists for them.
func TestUnconstrainedDeltasCoalesceCold(t *testing.T) {
	const n = 60
	key := record.Key("counter/views")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"views": 0}})

	settled := 0
	w.net.At(0, func() {
		for i := 0; i < n; i++ {
			w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"views": 1})},
				func(ok bool, err error) {
					settled++
					if err != nil || !ok {
						t.Errorf("unexpected outcome: ok=%v err=%v", ok, err)
					}
				})
		}
	})
	w.net.RunFor(10 * time.Second)
	if settled != n {
		t.Fatalf("settled %d of %d", settled, n)
	}
	if m := w.gw.Metrics(); m.MergedOptions == 0 {
		t.Errorf("cold unconstrained burst did not coalesce: %+v", m)
	}
	if val, ver := w.state(key); val.Attr("views") != n || ver != record.Version(1+n) {
		t.Errorf("views=%d ver=%d, want %d/%d", val.Attr("views"), ver, n, 1+n)
	}
}

// TestAdmissionBackpressure verifies the bounded in-flight window and
// backlog: overflow is shed fast with ErrOverloaded and everything
// admitted still settles.
func TestAdmissionBackpressure(t *testing.T) {
	const n = 20
	tun := Tuning{MaxInflight: 4, MaxQueue: 4, CoalesceWindow: -1} // passthrough only
	w := newTestWorld(t, tun, nil)

	commits, shed, settled := 0, 0, 0
	w.net.At(0, func() {
		for i := 0; i < n; i++ {
			key := record.Key("item/" + string(rune('a'+i)))
			w.gw.Commit([]record.Update{record.Insert(key, record.Value{Attrs: map[string]int64{"v": 1}})},
				func(ok bool, err error) {
					settled++
					switch {
					case err == ErrOverloaded:
						shed++
					case err != nil:
						t.Errorf("unexpected error: %v", err)
					case ok:
						commits++
					}
				})
		}
	})
	w.net.RunFor(20 * time.Second)

	if settled != n {
		t.Fatalf("settled %d of %d", settled, n)
	}
	if shed != n-8 {
		t.Errorf("shed %d, want %d (4 in flight + 4 queued admitted)", shed, n-8)
	}
	if commits != 8 {
		t.Errorf("commits = %d, want 8", commits)
	}
	m := w.gw.Metrics()
	if m.AdmissionRejects != int64(n-8) || m.QueuePeak != 4 {
		t.Errorf("admission metrics %+v", m)
	}
}

// TestBatcherPreservesOrder sends interleaved messages from several
// sources to one destination through the batcher and checks the
// destination observes every message in per-source send order.
func TestBatcherPreservesOrder(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	type tag struct {
		From int
		Seq  int
	}
	var got []tag
	net.Register("sink", func(env transport.Envelope) {
		switch m := env.Msg.(type) {
		case transport.Batch:
			for _, item := range m.Items {
				got = append(got, item.Msg.(tag))
			}
		case tag:
			got = append(got, m)
		}
	})
	net.Register("anchor", func(transport.Envelope) {})
	b := newBatcher(net, "anchor", 2*time.Millisecond, 8)
	const senders, per = 3, 20
	net.At(0, func() {
		for s := 0; s < per; s++ {
			for f := 0; f < senders; f++ {
				b.Send(transport.NodeID(rune('a'+f)), "sink", tag{From: f, Seq: s})
			}
		}
	})
	net.RunFor(time.Second)

	if len(got) != senders*per {
		t.Fatalf("received %d messages, want %d", len(got), senders*per)
	}
	last := map[int]int{0: -1, 1: -1, 2: -1}
	for _, m := range got {
		if m.Seq <= last[m.From] {
			t.Fatalf("reordered: from %d seq %d after %d", m.From, m.Seq, last[m.From])
		}
		last[m.From] = m.Seq
	}
}
