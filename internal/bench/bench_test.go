package bench

import (
	"testing"
	"time"

	"mdcc/internal/microbench"
	"mdcc/internal/record"
	"mdcc/internal/topology"
)

func microRun(t *testing.T, proto Protocol, clients int, seed int64) *Result {
	t.Helper()
	w := NewWorld(Options{
		Protocol:    proto,
		NodesPerDC:  2,
		Clients:     clients,
		ClientDC:    -1,
		Seed:        seed,
		Constraints: []record.Constraint{microbench.Constraint()},
	})
	wl := microbench.New(microbench.Defaults())
	return Run(w, wl, RunConfig{Warmup: 5 * time.Second, Measure: 20 * time.Second})
}

func TestMicrobenchOnMDCC(t *testing.T) {
	res := microRun(t, ProtoMDCC, 10, 1)
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.Aborts > res.Commits/10 {
		t.Fatalf("uncontended run aborted too much: %d commits %d aborts", res.Commits, res.Aborts)
	}
	med := res.WriteLat.Median()
	// One wide-area round trip to a fast quorum: roughly 170-260 ms
	// depending on client DC.
	if med < 120 || med > 320 {
		t.Fatalf("MDCC median = %.0fms, want one-round-trip scale (~170-260)", med)
	}
}

func TestMicrobenchAllProtocolsRun(t *testing.T) {
	for _, p := range []Protocol{ProtoFast, ProtoMulti, Proto2PC, ProtoQW3, ProtoQW4, ProtoMegastore} {
		res := microRun(t, p, 5, 2)
		if res.Commits == 0 {
			t.Fatalf("%s: no commits", p)
		}
		if res.WriteLat.N() == 0 {
			t.Fatalf("%s: no latencies recorded", p)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-shape test skipped in -short")
	}
	// Paper medians: MDCC 245 < Fast 276 < Multi 388 < 2PC 543.
	med := map[Protocol]float64{}
	for _, p := range []Protocol{ProtoMDCC, ProtoFast, ProtoMulti, Proto2PC} {
		res := microRun(t, p, 20, 3)
		med[p] = res.WriteLat.Median()
		t.Logf("%-6s median %.0fms commits %d aborts %d", p, med[p], res.Commits, res.Aborts)
	}
	if !(med[ProtoMDCC] <= med[ProtoFast]+25) {
		t.Errorf("MDCC (%.0f) should not be slower than Fast (%.0f)", med[ProtoMDCC], med[ProtoFast])
	}
	if !(med[ProtoFast] < med[ProtoMulti]) {
		t.Errorf("Fast (%.0f) should beat Multi (%.0f)", med[ProtoFast], med[ProtoMulti])
	}
	if !(med[ProtoMulti] < med[Proto2PC]) {
		t.Errorf("Multi (%.0f) should beat 2PC (%.0f)", med[ProtoMulti], med[Proto2PC])
	}
}

func TestFailureEventSchedule(t *testing.T) {
	w := NewWorld(Options{
		Protocol:    ProtoMDCC,
		NodesPerDC:  1,
		Clients:     5,
		ClientDC:    int(topology.USWest),
		Seed:        4,
		Constraints: []record.Constraint{microbench.Constraint()},
	})
	wl := microbench.New(microbench.Defaults())
	res := Run(w, wl, RunConfig{
		Warmup:  2 * time.Second,
		Measure: 30 * time.Second,
		Events: []Event{
			{At: 15 * time.Second, Do: func(w *World) { w.FailDC(topology.USEast) }},
		},
	})
	if res.Commits == 0 {
		t.Fatal("no commits across the failure")
	}
	// Commits must continue after the failure: look at the series.
	pre, npre := res.Series.MeanBetween(0, 15*time.Second)
	post, npost := res.Series.MeanBetween(15*time.Second, 32*time.Second)
	if npre == 0 || npost == 0 {
		t.Fatalf("series empty around failure: pre=%d post=%d", npre, npost)
	}
	if post <= pre {
		t.Logf("note: post-failure mean %.0fms <= pre %.0fms (allowed, but paper saw an increase)", post, pre)
	}
}

func TestPreloadReachesAllShards(t *testing.T) {
	w := NewWorld(Options{Protocol: ProtoMDCC, NodesPerDC: 4, Clients: 1, ClientDC: -1, Seed: 5})
	wl := microbench.New(microbench.Options{Items: 100, ItemsPerTxn: 3, MaxDecrement: 3,
		InitialStockMin: 10, InitialStockMax: 10, LocalMasterFrac: -1})
	w.Preload(wl.Preload(w.Net.Rand()))
	// Every key must be present at its replicas.
	for i := 0; i < 100; i++ {
		key := microbench.ItemKey(i)
		found := 0
		for _, s := range w.stores {
			if _, _, ok := s.Get(key); ok {
				found++
			}
		}
		if found != 5 {
			t.Fatalf("item %d present at %d stores, want 5 (one per DC)", i, found)
		}
	}
}
