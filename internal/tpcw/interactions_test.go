package tpcw

import (
	"math/rand"
	"strings"
	"testing"

	"mdcc/internal/mtx"
	"mdcc/internal/record"
	"mdcc/internal/topology"
)

// fakeClient is a synchronous in-memory mtx.Client for driving
// interactions without a cluster.
type fakeClient struct {
	vals    map[record.Key]record.Value
	vers    map[record.Key]record.Version
	comm    bool
	commits int
	aborts  int
}

func newFake(comm bool) *fakeClient {
	return &fakeClient{
		vals: make(map[record.Key]record.Value),
		vers: make(map[record.Key]record.Version),
		comm: comm,
	}
}

func (f *fakeClient) load(entries []struct {
	k record.Key
	v record.Value
}) {
	for _, e := range entries {
		f.vals[e.k] = e.v
		f.vers[e.k] = 1
	}
}

func (f *fakeClient) Read(key record.Key, cb func(record.Value, record.Version, bool)) {
	v, ok := f.vals[key]
	cb(v.Clone(), f.vers[key], ok && !v.Tombstone)
}

func (f *fakeClient) Commit(updates []record.Update, done func(bool)) {
	// Validate first (atomicity).
	for _, up := range updates {
		switch up.Kind {
		case record.KindPhysical:
			if up.ReadVersion != f.vers[up.Key] {
				f.aborts++
				done(false)
				return
			}
		case record.KindCommutative:
			cur := f.vals[up.Key]
			after := up.Apply(cur)
			if after.Attr(AttrStock) < 0 {
				f.aborts++
				done(false)
				return
			}
		}
	}
	for _, up := range updates {
		f.vals[up.Key] = up.Apply(f.vals[up.Key])
		f.vers[up.Key]++
	}
	f.commits++
	done(true)
}

func (f *fakeClient) SupportsCommutative() bool { return f.comm }

// seedItems puts items 0..n-1 into the fake store.
func seedItems(f *fakeClient, w *Workload, n int) {
	rng := rand.New(rand.NewSource(1))
	for _, e := range w.Preload(rng)[:n] {
		f.vals[e.Key] = e.Value
		f.vers[e.Key] = e.Version
	}
}

func runTxn(t *testing.T, txn mtx.Txn, c mtx.Client) mtx.TxnResult {
	t.Helper()
	var res *mtx.TxnResult
	txn(c, rand.New(rand.NewSource(2)), func(r mtx.TxnResult) { res = &r })
	if res == nil {
		t.Fatal("transaction never completed")
	}
	return *res
}

func TestShoppingCartPersistsLines(t *testing.T) {
	w := New(Options{Items: 50})
	f := newFake(true)
	seedItems(f, w, 50)
	rng := rand.New(rand.NewSource(3))
	b := w.browserFor(7)

	res := runTxn(t, w.shoppingCart(b, rng), f)
	if !res.Committed || !res.Write {
		t.Fatalf("cart txn = %+v", res)
	}
	if len(b.cart) == 0 {
		t.Fatal("browser cart empty after committed ShoppingCart")
	}
	cart := f.vals[CartKey(7)]
	lines := 0
	for name := range cart.Attrs {
		if strings.HasPrefix(name, "line_") {
			lines++
		}
	}
	if lines != len(b.cart) {
		t.Fatalf("cart record has %d lines, browser has %d", lines, len(b.cart))
	}
}

func TestBuyConfirmCommutativePath(t *testing.T) {
	w := New(Options{Items: 50})
	f := newFake(true)
	seedItems(f, w, 50)
	rng := rand.New(rand.NewSource(4))
	b := w.browserFor(1)
	b.cart = map[int]int64{3: 2, 9: 1}

	before3 := f.vals[ItemKey(3)].Attr(AttrStock)
	before9 := f.vals[ItemKey(9)].Attr(AttrStock)
	res := runTxn(t, w.buyConfirm(b, rng), f)
	if !res.Committed {
		t.Fatal("buy aborted")
	}
	if got := f.vals[ItemKey(3)].Attr(AttrStock); got != before3-2 {
		t.Fatalf("item 3 stock %d, want %d", got, before3-2)
	}
	if got := f.vals[ItemKey(9)].Attr(AttrStock); got != before9-1 {
		t.Fatalf("item 9 stock %d, want %d", got, before9-1)
	}
	order, ok := f.vals[b.lastOrder]
	if !ok || order.Attr(AttrQty) != 3 {
		t.Fatalf("order record = %v %v", order, ok)
	}
	if len(b.cart) != 0 {
		t.Fatal("cart not cleared after buy")
	}
}

func TestBuyConfirmRMWPath(t *testing.T) {
	w := New(Options{Items: 50})
	f := newFake(false) // no commutative support → read-modify-write
	seedItems(f, w, 50)
	rng := rand.New(rand.NewSource(5))
	b := w.browserFor(2)
	b.cart = map[int]int64{5: 2}

	before := f.vals[ItemKey(5)].Attr(AttrStock)
	res := runTxn(t, w.buyConfirm(b, rng), f)
	if !res.Committed {
		t.Fatal("RMW buy aborted")
	}
	if got := f.vals[ItemKey(5)].Attr(AttrStock); got != before-2 {
		t.Fatalf("stock %d, want %d", got, before-2)
	}
}

func TestBuyConfirmEmptyCartImpulseBuy(t *testing.T) {
	w := New(Options{Items: 50})
	f := newFake(true)
	seedItems(f, w, 50)
	rng := rand.New(rand.NewSource(6))
	b := w.browserFor(3) // empty cart

	res := runTxn(t, w.buyConfirm(b, rng), f)
	if !res.Committed {
		t.Fatal("impulse buy aborted")
	}
	if f.vals[b.lastOrder].Attr(AttrQty) != 1 {
		t.Fatal("impulse buy should order exactly one unit")
	}
}

func TestBuyConfirmOutOfStockAborts(t *testing.T) {
	w := New(Options{Items: 5})
	f := newFake(false)
	seedItems(f, w, 5)
	// Drain item 0.
	v := f.vals[ItemKey(0)]
	f.vals[ItemKey(0)] = v.WithAttr(AttrStock, 0)
	rng := rand.New(rand.NewSource(7))
	b := w.browserFor(4)
	b.cart = map[int]int64{0: 1}

	res := runTxn(t, w.buyConfirm(b, rng), f)
	if res.Committed {
		t.Fatal("bought an out-of-stock item")
	}
}

func TestCustomerRegistrationInserts(t *testing.T) {
	w := New(Options{Items: 10})
	f := newFake(true)
	b := w.browserFor(5)
	res := runTxn(t, w.customerRegistration(b), f)
	if !res.Committed || !res.Write {
		t.Fatalf("registration = %+v", res)
	}
	if _, ok := f.vals[CustKey(5, 1)]; !ok {
		t.Fatal("customer record missing")
	}
	// Sequence advances.
	runTxn(t, w.customerRegistration(b), f)
	if _, ok := f.vals[CustKey(5, 2)]; !ok {
		t.Fatal("second registration missing")
	}
}

func TestBuyRequestStampsCart(t *testing.T) {
	w := New(Options{Items: 10})
	f := newFake(true)
	seedItems(f, w, 10)
	rng := rand.New(rand.NewSource(8))
	b := w.browserFor(6)
	runTxn(t, w.shoppingCart(b, rng), f)
	res := runTxn(t, w.buyRequest(b, rng), f)
	if !res.Committed {
		t.Fatal("buy request aborted")
	}
	if _, ok := f.vals[CartKey(6)].Attrs["ship"]; !ok {
		t.Fatal("cart not stamped with shipping")
	}
}

func TestAdminConfirmUpdatesPrice(t *testing.T) {
	w := New(Options{Items: 10})
	f := newFake(true)
	seedItems(f, w, 10)
	rng := rand.New(rand.NewSource(9))
	res := runTxn(t, w.adminConfirm(rng), f)
	if !res.Committed || !res.Write {
		t.Fatalf("admin confirm = %+v", res)
	}
	if f.commits != 1 {
		t.Fatalf("commits = %d", f.commits)
	}
}

func TestReadOnlyInteractions(t *testing.T) {
	w := New(Options{Items: 20})
	f := newFake(true)
	seedItems(f, w, 20)
	rng := rand.New(rand.NewSource(10))
	for _, wi := range []Interaction{Home, NewProducts, BestSellers, ProductDetail, SearchRequest, SearchResults, OrderInquiry, AdminRequest} {
		_ = wi
		res := runTxn(t, w.readKeys(w.promoKeys(rng, 3)), f)
		if !res.Committed || res.Write {
			t.Fatalf("read-only interaction = %+v", res)
		}
	}
	if f.commits != 0 {
		t.Fatal("read-only interactions issued commits")
	}
}

func TestNextCoversWriteAndReadMix(t *testing.T) {
	w := New(Options{Items: 100})
	f := newFake(true)
	seedItems(f, w, 100)
	rng := rand.New(rand.NewSource(11))
	writes, reads := 0, 0
	for i := 0; i < 2000; i++ {
		res := runTxn(t, w.Next(i%10, topology.USWest, rng), f)
		if res.Write {
			writes++
		} else {
			reads++
		}
	}
	frac := float64(writes) / 2000
	if frac < 0.4 || frac > 0.62 {
		t.Fatalf("write fraction %.2f, want ≈0.5 (ordering mix)", frac)
	}
	ints := w.Interactions()
	for _, name := range []string{"BuyConfirm", "ShoppingCart", "Home", "SearchRequest"} {
		if ints[name] == 0 {
			t.Fatalf("interaction %s never issued: %v", name, ints)
		}
	}
}
