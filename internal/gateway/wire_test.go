package gateway

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mdcc/internal/record"
	"mdcc/internal/transport"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire vectors")

// rpcSamples covers the client ⇄ gateway RPC surface with canonical
// values (nil for empty, matching gob's omit-zero semantics).
func rpcSamples() map[string]transport.Message {
	return map[string]transport.Message{
		"MsgTx": MsgTx{ReqID: 7, Updates: []record.Update{
			{Kind: record.KindCommutative, Key: "item#9", Deltas: map[string]int64{"stock": -1}},
			{Kind: record.KindReadCheck, Key: "cust#2", ReadVersion: 4},
		}},
		"MsgTxReply": MsgTxReply{ReqID: 7, Committed: true},
		"MsgRead":    MsgRead{ReqID: 8, Key: "item#9", Quorum: true, Floor: 12},
		"MsgReadReply": MsgReadReply{
			ReqID: 8, Key: "item#9",
			Value:   record.Value{Attrs: map[string]int64{"stock": 40}},
			Version: 12, Exists: true,
		},
	}
}

func TestRPCWireGolden(t *testing.T) {
	for name, msg := range rpcSamples() {
		wm := msg.(transport.WireMessage)
		got := hex.EncodeToString(wm.AppendWire(nil))
		path := filepath.Join("testdata", "wire_golden", name+".hex")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if got != string(bytes.TrimSpace(want)) {
			t.Errorf("%s: encoding changed\n got %s\nwant %s\nwire format changes require a WireVersion bump and -update", name, got, string(bytes.TrimSpace(want)))
		}
	}
}

func TestRPCWireRoundTripParity(t *testing.T) {
	for name, msg := range rpcSamples() {
		in := transport.Envelope{From: "cli", To: "gw", Msg: msg}
		b, err := transport.AppendEnvelope(nil, in)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		out, err := transport.DecodeEnvelope(transport.NewWireReader(b))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(out.Msg, msg) {
			t.Errorf("%s: binary round trip mismatch\n got %#v\nwant %#v", name, out.Msg, msg)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("%s: gob encode: %v", name, err)
		}
		var ge transport.Envelope
		if err := gob.NewDecoder(&buf).Decode(&ge); err != nil {
			t.Fatalf("%s: gob decode: %v", name, err)
		}
		if !reflect.DeepEqual(out.Msg, ge.Msg) {
			t.Errorf("%s: binary and gob decode disagree\n bin %#v\n gob %#v", name, out.Msg, ge.Msg)
		}
	}
}
