package kv

import (
	"fmt"
	"testing"

	"mdcc/internal/record"
)

func TestMemoryBasics(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	if _, _, ok := s.Get("item/1"); ok {
		t.Fatal("Get on empty store found a key")
	}
	v := record.Value{Attrs: map[string]int64{"stock": 4}}
	if err := s.Put("item/1", v, 1); err != nil {
		t.Fatal(err)
	}
	got, ver, ok := s.Get("item/1")
	if !ok || ver != 1 || got.Attr("stock") != 4 {
		t.Fatalf("Get = %v v%d %v", got, ver, ok)
	}
	if !s.Exists("item/1") {
		t.Fatal("Exists = false for live record")
	}
	if s.Len() != 1 || s.Puts() != 1 {
		t.Fatalf("Len/Puts = %d/%d", s.Len(), s.Puts())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	v := record.Value{Attrs: map[string]int64{"x": 1}}
	s.Put("k", v, 1)
	got, _, _ := s.Get("k")
	got.Attrs["x"] = 99
	again, _, _ := s.Get("k")
	if again.Attr("x") != 1 {
		t.Fatal("Get leaked internal storage")
	}
	// The Put must also have copied.
	v.Attrs["x"] = 77
	again, _, _ = s.Get("k")
	if again.Attr("x") != 1 {
		t.Fatal("Put aliased caller's value")
	}
}

func TestTombstone(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	s.Put("k", record.Value{Attrs: map[string]int64{"x": 1}}, 1)
	s.Put("k", record.Value{Tombstone: true}, 2)
	if s.Exists("k") {
		t.Fatal("tombstoned record Exists")
	}
	_, ver, ok := s.Get("k")
	if !ok || ver != 2 {
		t.Fatalf("tombstone Get = v%d %v, want v2 true", ver, ok)
	}
	found := 0
	s.Scan("", "", func(Entry) bool { found++; return true })
	if found != 0 {
		t.Fatal("Scan returned a tombstoned record")
	}
}

func TestScanRangeOrder(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	for i := 0; i < 20; i++ {
		s.Put(record.Key(fmt.Sprintf("item/%03d", i)), record.Value{}, 1)
	}
	s.Put("other/1", record.Value{}, 1)
	var keys []record.Key
	s.Scan("item/", "item/z", func(e Entry) bool {
		keys = append(keys, e.Key)
		return true
	})
	if len(keys) != 20 {
		t.Fatalf("Scan returned %d keys, want 20", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Scan out of order")
		}
	}
	// Early stop.
	n := 0
	s.Scan("", "", func(Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-stop Scan visited %d", n)
	}
}

func TestDurableReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := record.Key(fmt.Sprintf("k%02d", i%10))
		if err := s.Put(k, record.Value{Attrs: map[string]int64{"v": int64(i)}}, record.Version(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("replayed Len = %d, want 10", s2.Len())
	}
	// Latest write wins per key: k5 last written at i=45.
	v, ver, ok := s2.Get("k05")
	if !ok || ver != 45 || v.Attr("v") != 45 {
		t.Fatalf("k05 = %v v%d %v, want v=45", v, ver, ok)
	}
}

func TestDurableVersionsSurviveTombstones(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", record.Value{Attrs: map[string]int64{"x": 1}}, 1)
	s.Put("k", record.Value{Tombstone: true}, 2)
	s.Close()
	s2, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Exists("k") {
		t.Fatal("tombstone lost on replay")
	}
	_, ver, _ := s2.Get("k")
	if ver != 2 {
		t.Fatalf("version after replay = %d, want 2", ver)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			s.Put(record.Key(fmt.Sprintf("k%d", i%7)), record.Value{Attrs: map[string]int64{"i": int64(i)}}, record.Version(i))
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		s.Get(record.Key(fmt.Sprintf("k%d", i%7)))
		s.Len()
	}
	<-done
}
