package mdcc

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// RemoteTopology describes a real TCP deployment: the address of each
// data center's server process. It is shared by cmd/mdcc-server and
// cmd/mdcc-client, typically loaded from a JSON file:
//
//	{
//	  "nodesPerDC": 1,
//	  "mode": "mdcc",
//	  "addrs": {
//	    "us-west": "10.0.1.5:7420",
//	    "us-east": "10.0.2.5:7420",
//	    "eu-ie":   "10.0.3.5:7420",
//	    "ap-sg":   "10.0.4.5:7420",
//	    "ap-tk":   "10.0.5.5:7420"
//	  }
//	}
type RemoteTopology struct {
	NodesPerDC  int               `json:"nodesPerDC"`
	Mode        string            `json:"mode"`            // "mdcc" | "fast" | "multi"
	Codec       string            `json:"codec,omitempty"` // send-side wire codec: "binary" (default) | "gob"
	Addrs       map[string]string `json:"addrs"`
	Constraints []struct {
		Attr string `json:"attr"`
		Min  *int64 `json:"min"`
		Max  *int64 `json:"max"`
	} `json:"constraints"`
}

// LoadRemoteTopology reads a topology JSON file.
func LoadRemoteTopology(path string) (*RemoteTopology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mdcc: topology: %w", err)
	}
	var t RemoteTopology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("mdcc: topology: %w", err)
	}
	if t.NodesPerDC < 1 {
		t.NodesPerDC = 1
	}
	return &t, nil
}

// ParseMode maps a topology mode string to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "mdcc":
		return ModeMDCC, nil
	case "fast":
		return ModeFast, nil
	case "multi":
		return ModeMulti, nil
	default:
		return ModeMDCC, fmt.Errorf("mdcc: unknown mode %q", s)
	}
}

// ParseDC maps a data center short name ("us-west", …) to its DC.
func ParseDC(s string) (DC, error) {
	for _, dc := range topology.AllDCs() {
		if dc.String() == s {
			return dc, nil
		}
	}
	return 0, fmt.Errorf("mdcc: unknown data center %q (want one of us-west, us-east, eu-ie, ap-sg, ap-tk)", s)
}

// Mode returns the parsed protocol mode.
func (t *RemoteTopology) ModeValue() (Mode, error) { return ParseMode(t.Mode) }

// ConstraintList converts the JSON constraints.
func (t *RemoteTopology) ConstraintList() []Constraint {
	out := make([]Constraint, 0, len(t.Constraints))
	for _, c := range t.Constraints {
		out = append(out, Constraint{Attr: c.Attr, Min: c.Min, Max: c.Max})
	}
	return out
}

// routes builds the storage-node routing table for the topology.
func (t *RemoteTopology) routes() (map[transport.NodeID]string, error) {
	routes := make(map[transport.NodeID]string)
	for name, addr := range t.Addrs {
		dc, err := ParseDC(name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < t.NodesPerDC; i++ {
			routes[topology.StorageID(dc, i)] = addr
		}
	}
	return routes, nil
}

// cluster builds the logical cluster layout for the topology.
func (t *RemoteTopology) cluster() *topology.Cluster {
	return topology.NewCluster(topology.Layout{NodesPerDC: t.NodesPerDC, Clients: 0, ClientDC: -1})
}

// RemoteSession is a Session plus the transport it owns.
type RemoteSession struct {
	*Session
	net *transport.TCP
}

// Close shuts the session's transport down.
func (r *RemoteSession) Close() { r.net.Close() }

// Dial connects a client session (homed in dc) to a TCP deployment.
// clientID must be unique among concurrently connected clients;
// listen is the local address for replies ("127.0.0.1:0" for any
// port).
func Dial(topo *RemoteTopology, dc DC, clientID, listen string) (*RemoteSession, error) {
	mode, err := topo.ModeValue()
	if err != nil {
		return nil, err
	}
	routes, err := topo.routes()
	if err != nil {
		return nil, err
	}
	net := transport.NewTCP(routes)
	codec, err := transport.ParseCodec(topo.Codec)
	if err != nil {
		return nil, err
	}
	net.SetCodec(codec)
	addr, err := net.Listen(listen)
	if err != nil {
		return nil, err
	}
	id := transport.NodeID("client/" + clientID)
	// Tell every server where replies to this client go.
	for _, serverAddr := range topo.Addrs {
		net.Hello(serverAddr, id, addr)
	}
	cfg := core.Defaults(mode)
	cfg.Constraints = topo.ConstraintList()
	coord := core.NewCoordinator(id, dc, net, topo.cluster(), cfg)
	return &RemoteSession{Session: newSession(coordBackend{id: id, net: net, coord: coord}, cfg), net: net}, nil
}

// DialGateway connects a thin client session to the gateway tier of a
// TCP deployment (a cmd/mdcc-server running with -gateway in dc).
// Unlike Dial, the client embeds no coordinator: transactions travel
// as single request/reply RPCs to the gateway, which pools
// coordinators, batches and coalesces across all attached clients.
func DialGateway(topo *RemoteTopology, dc DC, clientID, listen string) (*RemoteSession, error) {
	mode, err := topo.ModeValue()
	if err != nil {
		return nil, err
	}
	addr, ok := topo.Addrs[dc.String()]
	if !ok {
		return nil, fmt.Errorf("mdcc: no server address for %s in topology", dc)
	}
	net := transport.NewTCP(map[transport.NodeID]string{gateway.GatewayID(dc): addr})
	codec, err := transport.ParseCodec(topo.Codec)
	if err != nil {
		return nil, err
	}
	net.SetCodec(codec)
	selfAddr, err := net.Listen(listen)
	if err != nil {
		return nil, err
	}
	id := transport.NodeID("client/" + clientID)
	net.Hello(addr, id, selfAddr)
	cfg := core.Defaults(mode)
	cfg.Constraints = topo.ConstraintList()
	b := &gatewayRPCBackend{
		id:   id,
		gwID: gateway.GatewayID(dc),
		net:  net,
		// A commit unacknowledged past this deadline surfaces as a typed
		// OutcomeUnknownError instead of hanging to the session timeout:
		// long enough for the protocol to settle through recoveries,
		// short enough to beat newSession's blocking deadline.
		unknownAfter: 3*cfg.OptionTimeout + 3*cfg.RecoveryRetry,
	}
	net.Register(id, b.handle)
	return &RemoteSession{Session: newSession(b, cfg), net: net}, nil
}

// rpcStaleAfter is how long an unanswered RPC's callback is kept: far
// beyond any Session timeout, so pruning can never race a live call.
const rpcStaleAfter = 2 * time.Minute

// gatewayRPCBackend speaks the thin client ⇄ gateway RPC over TCP.
// Lost replies are abandoned to the Session's timeout; their stale
// callbacks are pruned as later requests come through (entries older
// than rpcStaleAfter, swept once the tables grow past a threshold).
type gatewayRPCBackend struct {
	id   transport.NodeID
	gwID transport.NodeID
	net  *transport.TCP
	// unknownAfter is the per-commit settle deadline: a submitted
	// write-set with no reply by then fails fast with a typed
	// *OutcomeUnknownError (the transaction may still commit — a
	// crashed gateway's proposed options are settled by the protocol).
	unknownAfter time.Duration

	mu    sync.Mutex
	seq   uint64
	txs   map[uint64]pendingTx
	reads map[uint64]pendingRead
}

type pendingTx struct {
	cb func(bool, error)
	at time.Time
}

type pendingRead struct {
	cb func(record.Value, record.Version, bool)
	at time.Time
}

func (b *gatewayRPCBackend) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case gateway.MsgTxReply:
		b.mu.Lock()
		p, ok := b.txs[m.ReqID]
		delete(b.txs, m.ReqID)
		b.mu.Unlock()
		if ok {
			switch {
			case m.Overloaded:
				p.cb(false, ErrOverloaded)
			case m.MixedKinds:
				p.cb(false, ErrMixedUpdateKinds)
			default:
				p.cb(m.Committed, nil)
			}
		}
	case gateway.MsgReadReply:
		b.mu.Lock()
		p, ok := b.reads[m.ReqID]
		delete(b.reads, m.ReqID)
		b.mu.Unlock()
		if ok {
			p.cb(m.Value, m.Version, m.Exists)
		}
	}
}

// pruneLocked drops callbacks whose replies are long lost. Swept only
// when a table has grown past a threshold, so the common case pays
// nothing.
func (b *gatewayRPCBackend) pruneLocked(now time.Time) {
	const sweepAt = 64
	if len(b.txs) >= sweepAt {
		for req, p := range b.txs {
			if now.Sub(p.at) > rpcStaleAfter {
				delete(b.txs, req)
			}
		}
	}
	if len(b.reads) >= sweepAt {
		for req, p := range b.reads {
			if now.Sub(p.at) > rpcStaleAfter {
				delete(b.reads, req)
			}
		}
	}
}

func (b *gatewayRPCBackend) read(key Key, floor Version, quorum bool, cb func(record.Value, record.Version, bool)) {
	now := time.Now()
	b.mu.Lock()
	b.pruneLocked(now)
	b.seq++
	req := b.seq
	if b.reads == nil {
		b.reads = make(map[uint64]pendingRead)
	}
	b.reads[req] = pendingRead{cb: cb, at: now}
	b.mu.Unlock()
	b.net.Send(b.id, b.gwID, gateway.MsgRead{ReqID: req, Key: key, Quorum: quorum, Floor: floor})
}

func (b *gatewayRPCBackend) Read(key Key, floor Version, cb func(record.Value, record.Version, bool)) {
	b.read(key, floor, false, cb)
}

func (b *gatewayRPCBackend) ReadQuorum(key Key, cb func(record.Value, record.Version, bool)) {
	b.read(key, 0, true, cb)
}

func (b *gatewayRPCBackend) Commit(updates []Update, done func(bool, error)) {
	now := time.Now()
	b.mu.Lock()
	b.pruneLocked(now)
	b.seq++
	req := b.seq
	if b.txs == nil {
		b.txs = make(map[uint64]pendingTx)
	}
	b.txs[req] = pendingTx{cb: done, at: now}
	b.mu.Unlock()
	b.net.Send(b.id, b.gwID, gateway.MsgTx{ReqID: req, Updates: updates})
	if b.unknownAfter > 0 {
		// Settle deadline: if the acknowledgement never comes back (the
		// gateway crashed with the transaction in hand, or the reply was
		// lost for good), fail fast with the typed unknown-outcome error
		// instead of letting the session block to its generic timeout.
		// Exactly-once with the reply path via the pending-table claim.
		b.net.After(b.id, b.unknownAfter, func() {
			b.mu.Lock()
			p, ok := b.txs[req]
			delete(b.txs, req)
			b.mu.Unlock()
			if ok {
				p.cb(false, &OutcomeUnknownError{TxID: fmt.Sprintf("%s/%s#%d", b.gwID, b.id, req)})
			}
		})
	}
}

// Metrics: a thin RPC client holds no protocol counters.
func (b *gatewayRPCBackend) Metrics() core.CoordMetrics { return core.CoordMetrics{} }
