// Package bench is the experiment harness: it builds a full simulated
// deployment (storage nodes, clients, WAN) for any of the compared
// protocols, drives workloads through the uniform mtx.Client
// interface in closed loops, injects failures on schedule, and
// collects the latency distributions, throughput numbers and time
// series that regenerate the paper's figures.
package bench

import (
	"fmt"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/kv"
	"mdcc/internal/megastore"
	"mdcc/internal/mtx"
	"mdcc/internal/qw"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
	"mdcc/internal/twopc"
)

// Protocol selects the system under test.
type Protocol string

// The seven configurations of the paper's evaluation.
const (
	ProtoMDCC      Protocol = "MDCC"       // fast + commutative
	ProtoFast      Protocol = "Fast"       // fast, no commutative
	ProtoMulti     Protocol = "Multi"      // classic ballots, stable masters
	Proto2PC       Protocol = "2PC"        // two-phase commit
	ProtoQW3       Protocol = "QW-3"       // quorum writes, W=3
	ProtoQW4       Protocol = "QW-4"       // quorum writes, W=4
	ProtoMegastore Protocol = "Megastore*" // entity-group log
)

// AllProtocols lists every configuration (figure 3/4 order).
func AllProtocols() []Protocol {
	return []Protocol{ProtoQW3, ProtoQW4, ProtoMDCC, Proto2PC, ProtoMegastore}
}

// Options configures a World.
type Options struct {
	Protocol    Protocol
	NodesPerDC  int
	Clients     int
	ClientDC    int // -1 = geo-distributed round-robin
	Seed        int64
	ServiceTime time.Duration // per-message node busy time
	JitterFrac  float64
	Constraints []record.Constraint
	MasterDC    func(record.Key) topology.DC // core protocols only
	Gamma       int                          // 0 = paper default (100)
	// DisableBatching turns off the §7 message-batching optimization
	// (core protocols; used by the batching ablation).
	DisableBatching bool
	// DropProb uniformly drops messages (chaos tests).
	DropProb float64
	// SyncInterval enables core anti-entropy (chaos tests).
	SyncInterval time.Duration
}

// World is a ready-to-run deployment.
type World struct {
	Opts    Options
	Net     *simnet.Net
	Cluster *topology.Cluster
	Clients []mtx.Client

	coreNodes  []*core.StorageNode
	coreCoords []*core.Coordinator
	qwNodes    []*qw.StorageNode
	twopcParts []*twopc.Participant
	twopcCos   []*twopc.Coordinator
	msReplicas []*megastore.Replica
	msMaster   *megastore.Master
	stores     []*kv.Store // all storage-node stores, for preloading
}

// coreClient adapts core.Coordinator to mtx.Client.
type coreClient struct {
	c    *core.Coordinator
	comm bool
}

func (cc coreClient) Read(key record.Key, cb mtx.ReadFunc) { cc.c.Read(key, cb) }
func (cc coreClient) Commit(updates []record.Update, done func(bool)) {
	cc.c.Commit(updates, func(r core.CommitResult) { done(r.Committed) })
}
func (cc coreClient) SupportsCommutative() bool { return cc.comm }

// NewWorld builds the deployment for opts.
func NewWorld(opts Options) *World {
	if opts.NodesPerDC < 1 {
		opts.NodesPerDC = 1
	}
	if opts.ServiceTime == 0 {
		// ~4k messages/second per storage node (m1.large-era boxes).
		// Higher values saturate the 2-node-per-DC micro-benchmark
		// deployments at 100 clients and drown protocol latency in
		// queueing delay.
		opts.ServiceTime = 250 * time.Microsecond
	}
	if opts.JitterFrac == 0 {
		opts.JitterFrac = 0.10
	}
	cl := topology.NewCluster(topology.Layout{
		NodesPerDC: opts.NodesPerDC,
		Clients:    opts.Clients,
		ClientDC:   opts.ClientDC,
	})
	extra := map[transport.NodeID]topology.DC{}
	if opts.Protocol == ProtoMegastore {
		for _, dc := range topology.AllDCs() {
			extra[megastore.ReplicaIDFor(dc)] = dc
		}
	}
	net := simnet.New(simnet.Options{
		Latency:     cl.LatencyWith(extra),
		JitterFrac:  opts.JitterFrac,
		ServiceTime: opts.ServiceTime,
		DropProb:    opts.DropProb,
		Seed:        opts.Seed,
	})
	w := &World{Opts: opts, Net: net, Cluster: cl}

	switch opts.Protocol {
	case ProtoMDCC, ProtoFast, ProtoMulti:
		w.buildCore(opts, cl, net)
	case Proto2PC:
		w.build2PC(opts, cl, net)
	case ProtoQW3:
		w.buildQW(cl, net, 3)
	case ProtoQW4:
		w.buildQW(cl, net, 4)
	case ProtoMegastore:
		w.buildMegastore(cl, net)
	default:
		panic(fmt.Sprintf("bench: unknown protocol %q", opts.Protocol))
	}
	return w
}

func (w *World) buildCore(opts Options, cl *topology.Cluster, net *simnet.Net) {
	var mode core.Mode
	switch opts.Protocol {
	case ProtoFast:
		mode = core.ModeFast
	case ProtoMulti:
		mode = core.ModeMulti
	default:
		mode = core.ModeMDCC
	}
	cfg := core.Defaults(mode)
	cfg.Constraints = opts.Constraints
	cfg.MasterDC = opts.MasterDC
	cfg.DisableBatching = opts.DisableBatching
	cfg.SyncInterval = opts.SyncInterval
	if opts.Gamma > 0 {
		cfg.Gamma = opts.Gamma
	}
	for _, n := range cl.Storage {
		store := kv.NewMemory()
		w.stores = append(w.stores, store)
		w.coreNodes = append(w.coreNodes, core.NewStorageNode(n.ID, n.DC, net, cl, cfg, store))
	}
	for _, c := range cl.Clients {
		co := core.NewCoordinator(c.ID, c.DC, net, cl, cfg)
		w.coreCoords = append(w.coreCoords, co)
		w.Clients = append(w.Clients, coreClient{c: co, comm: mode == core.ModeMDCC})
	}
}

func (w *World) build2PC(opts Options, cl *topology.Cluster, net *simnet.Net) {
	for _, n := range cl.Storage {
		store := kv.NewMemory()
		w.stores = append(w.stores, store)
		w.twopcParts = append(w.twopcParts,
			twopc.NewParticipant(n.ID, net, store, opts.Constraints, 10*time.Second))
	}
	for _, c := range cl.Clients {
		co := twopc.NewCoordinator(c.ID, c.DC, net, cl, 5*time.Second)
		w.twopcCos = append(w.twopcCos, co)
		w.Clients = append(w.Clients, co)
	}
}

func (w *World) buildQW(cl *topology.Cluster, net *simnet.Net, quorum int) {
	for _, n := range cl.Storage {
		store := kv.NewMemory()
		w.stores = append(w.stores, store)
		w.qwNodes = append(w.qwNodes, qw.NewStorageNode(n.ID, net, store))
	}
	for _, c := range cl.Clients {
		w.Clients = append(w.Clients, qw.NewClient(c.ID, c.DC, net, cl, quorum))
	}
}

func (w *World) buildMegastore(cl *topology.Cluster, net *simnet.Net) {
	var west *megastore.Replica
	for _, dc := range topology.AllDCs() {
		store := kv.NewMemory()
		w.stores = append(w.stores, store)
		r := megastore.NewReplica(megastore.ReplicaIDFor(dc), net, store)
		w.msReplicas = append(w.msReplicas, r)
		if dc == topology.USWest {
			west = r
		}
	}
	w.msMaster = megastore.NewMaster(net, cl, west)
	for _, c := range cl.Clients {
		w.Clients = append(w.Clients, megastore.NewClient(c.ID, c.DC, net, cl))
	}
}

// ClientDC returns the data center client i runs in.
func (w *World) ClientDC(i int) topology.DC {
	return w.Cluster.Clients[i].DC
}

// Preload writes initial records directly into every replica's store
// (bulk load happens before the measured run, as on a real testbed).
func (w *World) Preload(entries []kv.Entry) {
	if w.Opts.Protocol == ProtoMegastore {
		// One full copy per DC replica.
		for _, s := range w.stores {
			for _, e := range entries {
				_ = s.Put(e.Key, e.Value, e.Version)
			}
		}
		return
	}
	// Range-partitioned: each storage node holds its shard.
	for _, e := range entries {
		shard := w.Cluster.Shard(e.Key)
		for i, n := range w.Cluster.Storage {
			if n.Index == shard {
				_ = w.stores[i].Put(e.Key, e.Value, e.Version)
			}
		}
	}
}

// FailDC fails every storage node of a data center (figure 8's
// simulated outage: the DC stops receiving messages).
func (w *World) FailDC(dc topology.DC) {
	for _, n := range w.Cluster.Storage {
		if n.DC == dc {
			w.Net.Fail(n.ID)
		}
	}
	if w.Opts.Protocol == ProtoMegastore {
		w.Net.Fail(megastore.ReplicaIDFor(dc))
	}
}

// RecoverDC brings a failed data center back.
func (w *World) RecoverDC(dc topology.DC) {
	for _, n := range w.Cluster.Storage {
		if n.DC == dc {
			w.Net.Recover(n.ID)
		}
	}
	if w.Opts.Protocol == ProtoMegastore {
		w.Net.Recover(megastore.ReplicaIDFor(dc))
	}
}

// CoreMetrics sums storage-node metrics (zero for non-core protocols).
func (w *World) CoreMetrics() core.Metrics {
	var total core.Metrics
	for _, n := range w.coreNodes {
		m := n.Metrics()
		total.VotesAccept += m.VotesAccept
		total.VotesReject += m.VotesReject
		total.Forwarded += m.Forwarded
		total.Executed += m.Executed
		total.Discarded += m.Discarded
		total.Phase1 += m.Phase1
		total.Phase2 += m.Phase2
		total.EnableFast += m.EnableFast
		total.DemarcationRejects += m.DemarcationRejects
		total.Sweeps += m.Sweeps
	}
	return total
}

// CoordMetrics sums coordinator metrics (zero for non-core protocols).
func (w *World) CoordMetrics() core.CoordMetrics {
	var total core.CoordMetrics
	for _, c := range w.coreCoords {
		m := c.Metrics()
		total.Commits += m.Commits
		total.Aborts += m.Aborts
		total.FastLearns += m.FastLearns
		total.LeaderLearns += m.LeaderLearns
		total.Recoveries += m.Recoveries
		total.Collisions += m.Collisions
		total.ReadRetries += m.ReadRetries
		total.ReadFails += m.ReadFails
	}
	return total
}

// StoreOf returns the committed state of key at its replica in the
// data center with index dc (validation hooks for tests).
func (w *World) StoreOf(key record.Key, dc int) (record.Value, record.Version, bool) {
	if w.Opts.Protocol == ProtoMegastore {
		return w.stores[dc].Get(key)
	}
	shard := w.Cluster.Shard(key)
	for i, n := range w.Cluster.Storage {
		if int(n.DC) == dc && n.Index == shard {
			return w.stores[i].Get(key)
		}
	}
	return record.Value{}, 0, false
}
