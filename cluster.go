package mdcc

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// ClusterConfig shapes an in-process cluster.
type ClusterConfig struct {
	// Mode selects the protocol variant (default ModeMDCC).
	Mode Mode
	// NodesPerDC is the number of storage nodes (shards) per data
	// center (default 1).
	NodesPerDC int
	// Constraints are enforced on commutative updates cluster-wide.
	Constraints []Constraint
	// LatencyScale multiplies the realistic inter-DC latencies
	// (hundreds of ms). 1.0 feels like the real WAN; 0.02 makes
	// examples snappy while preserving relative geometry. Default 0.05.
	LatencyScale float64
	// DataDir, when set, gives every storage node a WAL-backed
	// durable store under DataDir/<node>; empty means in-memory.
	DataDir string
	// Gamma overrides the fast-policy window (default 100).
	Gamma int
	// SyncInterval enables background anti-entropy between replicas
	// (catch-up after outages); zero disables.
	SyncInterval time.Duration
	// Seed randomizes latency jitter.
	Seed int64
	// Gateway tunes the per-DC gateway tier created by
	// Cluster.Gateway (zero value = defaults).
	Gateway GatewayTuning
}

// Cluster is an in-process five-data-center MDCC deployment running
// on the real-time transport.
type Cluster struct {
	cfg     ClusterConfig
	coreCfg core.Config
	net     *transport.Local
	cl      *topology.Cluster
	nodes   []*core.StorageNode
	stores  []*kv.Store
	mu      sync.Mutex
	gws     map[DC]*Gateway
	nextCli atomic.Int64
	closed  bool
}

// StartCluster builds and starts an in-process cluster.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NodesPerDC < 1 {
		cfg.NodesPerDC = 1
	}
	if cfg.LatencyScale <= 0 {
		cfg.LatencyScale = 0.05
	}
	cl := topology.NewCluster(topology.Layout{NodesPerDC: cfg.NodesPerDC, Clients: 0, ClientDC: -1})

	// Gateway nodes (one gateway + coordinator pool per DC) live in
	// their data center for latency purposes, whether or not a gateway
	// is ever created.
	extra := make(map[transport.NodeID]topology.DC)
	for _, dc := range topology.AllDCs() {
		for _, id := range gateway.NodeIDs(dc, cfg.Gateway) {
			extra[id] = dc
		}
	}
	base := cl.LatencyWith(extra)
	scale := cfg.LatencyScale
	scaled := func(from, to transport.NodeID) time.Duration {
		return time.Duration(float64(base(from, to)) * scale)
	}
	lat := transport.UniformJitter(scaled, 0.1, rand.New(rand.NewSource(cfg.Seed)))
	net := transport.NewLocal(lat)

	// The core protocol configuration is derived exactly once and
	// shared by storage nodes, sessions and gateways.
	coreCfg := clusterCoreConfig(cfg)

	c := &Cluster{cfg: cfg, coreCfg: coreCfg, net: net, cl: cl, gws: make(map[DC]*Gateway)}
	for _, n := range cl.Storage {
		var store *kv.Store
		if cfg.DataDir != "" {
			dir := filepath.Join(cfg.DataDir, string(n.ID))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				net.Close()
				return nil, fmt.Errorf("mdcc: %w", err)
			}
			s, err := kv.Open(dir, false)
			if err != nil {
				net.Close()
				return nil, err
			}
			store = s
		} else {
			store = kv.NewMemory()
		}
		c.stores = append(c.stores, store)
		c.nodes = append(c.nodes, core.NewStorageNode(n.ID, n.DC, net, cl, coreCfg, store))
	}
	return c, nil
}

// clusterCoreConfig derives the protocol configuration, scaling the
// timeouts with the latency scale so compressed clusters stay snappy.
func clusterCoreConfig(cfg ClusterConfig) core.Config {
	coreCfg := core.Defaults(cfg.Mode)
	coreCfg.Constraints = cfg.Constraints
	coreCfg.SyncInterval = cfg.SyncInterval
	if cfg.Gamma > 0 {
		coreCfg.Gamma = cfg.Gamma
	}
	s := cfg.LatencyScale
	if s < 1 {
		floor := func(d, min time.Duration) time.Duration {
			d = time.Duration(float64(d) * s)
			if d < min {
				return min
			}
			return d
		}
		coreCfg.OptionTimeout = floor(coreCfg.OptionTimeout, 100*time.Millisecond)
		coreCfg.RecoveryRetry = floor(coreCfg.RecoveryRetry, 80*time.Millisecond)
		coreCfg.PendingTimeout = floor(coreCfg.PendingTimeout, 500*time.Millisecond)
		coreCfg.ReadTimeout = floor(coreCfg.ReadTimeout, 60*time.Millisecond)
	}
	return coreCfg
}

// Session opens a client session homed in the given data center, with
// a private coordinator (the paper's app-server library model). For
// high-fan-in deployments prefer Gateway(dc).Session().
func (c *Cluster) Session(dc DC) *Session {
	id := transport.NodeID(fmt.Sprintf("session%d", c.nextCli.Add(1)))
	coord := core.NewCoordinator(id, dc, c.net, c.cl, c.coreCfg)
	return newSession(coordBackend{id: id, net: c.net, coord: coord}, c.coreCfg)
}

// Gateway returns the data center's shared transaction gateway,
// creating it on first use. All sessions obtained from it multiplex
// over one bounded coordinator pool with cross-transaction batching
// and hot-key delta coalescing.
func (c *Cluster) Gateway(dc DC) *Gateway {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.gws[dc]; ok {
		return g
	}
	gw := gateway.New(dc, c.net, c.cl, c.coreCfg, c.cfg.Gateway)
	g := &Gateway{dc: dc, gw: gw, cfg: c.coreCfg}
	c.gws[dc] = g
	return g
}

// FailDC simulates a data-center outage: every storage node in dc
// stops sending and receiving until RecoverDC.
func (c *Cluster) FailDC(dc DC) {
	for _, n := range c.cl.Storage {
		if n.DC == dc {
			c.net.Fail(n.ID)
		}
	}
}

// RecoverDC ends a simulated outage.
func (c *Cluster) RecoverDC(dc DC) {
	for _, n := range c.cl.Storage {
		if n.DC == dc {
			c.net.Recover(n.ID)
		}
	}
}

// TransportStats snapshots the in-process transport's counters
// (messages, batch envelopes).
func (c *Cluster) TransportStats() transport.Stats { return c.net.Stats() }

// Close shuts the cluster down and closes durable stores.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, g := range c.gws {
		g.gw.Close()
	}
	c.net.Close()
	for _, s := range c.stores {
		_ = s.Close()
	}
}
