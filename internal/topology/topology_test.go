package topology

import (
	"testing"
	"time"

	"mdcc/internal/record"
)

func TestDCNames(t *testing.T) {
	names := map[DC]string{
		USWest: "us-west", USEast: "us-east", EUIreland: "eu-ie",
		APSingapore: "ap-sg", APTokyo: "ap-tk",
	}
	for dc, want := range names {
		if dc.String() != want {
			t.Errorf("%d.String() = %q, want %q", dc, dc.String(), want)
		}
	}
	if DC(99).String() != "dc99" {
		t.Errorf("unknown DC String = %q", DC(99).String())
	}
	if len(AllDCs()) != 5 {
		t.Fatalf("AllDCs = %d entries, want 5", len(AllDCs()))
	}
}

func TestLatencyMatrixSymmetricPositive(t *testing.T) {
	for _, a := range AllDCs() {
		for _, b := range AllDCs() {
			d := OneWay(a, b)
			if d <= 0 {
				t.Fatalf("OneWay(%v,%v) = %v, want > 0", a, b, d)
			}
			if OneWay(a, b) != OneWay(b, a) {
				t.Fatalf("matrix asymmetric for %v,%v", a, b)
			}
			if a == b && d > time.Millisecond {
				t.Fatalf("intra-DC latency %v too large", d)
			}
			if a != b && d < 10*time.Millisecond {
				t.Fatalf("inter-DC latency %v suspiciously small", d)
			}
		}
	}
	if RTT(USWest, USEast) != 2*OneWay(USWest, USEast) {
		t.Fatal("RTT != 2x one-way")
	}
}

func TestQuorums(t *testing.T) {
	cases := []struct{ n, classic, fast int }{
		{3, 2, 3},
		{5, 3, 4},
		{7, 4, 6},
		{9, 5, 7},
	}
	for _, c := range cases {
		cl, fa := Quorums(c.n)
		if cl != c.classic || fa != c.fast {
			t.Errorf("Quorums(%d) = %d,%d want %d,%d", c.n, cl, fa, c.classic, c.fast)
		}
	}
}

// Fast Paxos quorum requirement: any two fast quorums and one classic
// quorum must intersect: 2*fast + classic > 2*n.
func TestQuorumIntersection(t *testing.T) {
	for n := 3; n <= 15; n++ {
		cl, fa := Quorums(n)
		if cl+fa <= n {
			t.Errorf("n=%d: classic+fast = %d <= n, quorums may not intersect", n, cl+fa)
		}
		if 2*fa+cl <= 2*n {
			t.Errorf("n=%d: 2*fast+classic = %d <= 2n, fast quorum rule violated", n, 2*fa+cl)
		}
	}
}

func TestClusterLayout(t *testing.T) {
	c := NewCluster(Layout{NodesPerDC: 4, Clients: 10, ClientDC: -1})
	if len(c.Storage) != 20 {
		t.Fatalf("storage nodes = %d, want 20", len(c.Storage))
	}
	if len(c.Clients) != 10 {
		t.Fatalf("clients = %d, want 10", len(c.Clients))
	}
	if c.ClassicQuorum() != 3 || c.FastQuorum() != 4 {
		t.Fatalf("quorums = %d,%d want 3,4", c.ClassicQuorum(), c.FastQuorum())
	}
	if c.ReplicationFactor() != 5 {
		t.Fatalf("replication = %d, want 5", c.ReplicationFactor())
	}
	// Clients spread round-robin across DCs.
	seen := map[DC]int{}
	for _, n := range c.Clients {
		seen[n.DC]++
	}
	if len(seen) != 5 {
		t.Fatalf("geo-distributed clients cover %d DCs, want 5", len(seen))
	}
}

func TestClusterPinnedClients(t *testing.T) {
	c := NewCluster(Layout{NodesPerDC: 1, Clients: 5, ClientDC: int(USWest)})
	for _, n := range c.Clients {
		if n.DC != USWest {
			t.Fatalf("pinned client in %v, want us-west", n.DC)
		}
	}
}

func TestReplicasOnePerDC(t *testing.T) {
	c := NewCluster(Layout{NodesPerDC: 4, Clients: 0, ClientDC: -1})
	reps := c.Replicas("item/00042")
	if len(reps) != 5 {
		t.Fatalf("replicas = %d, want 5", len(reps))
	}
	dcs := map[DC]bool{}
	for _, id := range reps {
		dc, ok := c.NodeDC(id)
		if !ok {
			t.Fatalf("replica %s unknown to cluster", id)
		}
		if dcs[dc] {
			t.Fatalf("two replicas in %v", dc)
		}
		dcs[dc] = true
	}
	// Same shard in every DC.
	shard := c.Shard("item/00042")
	if c.ReplicaIn("item/00042", USEast) != StorageID(USEast, shard) {
		t.Fatal("ReplicaIn disagrees with Shard")
	}
}

func TestShardStableAndInRange(t *testing.T) {
	c := NewCluster(Layout{NodesPerDC: 4, Clients: 0, ClientDC: -1})
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		k := record.Key(string(rune('a'+i%26)) + string(rune('0'+i%10)) + "key")
		s := c.Shard(k)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if s != c.Shard(k) {
			t.Fatal("Shard not deterministic")
		}
		counts[s]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d never used — bad distribution %v", i, counts)
		}
	}
}

func TestClusterLatencyFunc(t *testing.T) {
	c := NewCluster(Layout{NodesPerDC: 1, Clients: 2, ClientDC: -1})
	lat := c.Latency()
	// client0 is in USWest, store in USEast.
	d := lat(ClientID(0), StorageID(USEast, 0))
	if d != OneWay(USWest, USEast) {
		t.Fatalf("latency = %v, want %v", d, OneWay(USWest, USEast))
	}
	if lat(StorageID(USWest, 0), StorageID(USWest, 0)) > time.Millisecond {
		t.Fatal("self latency should be intra-DC")
	}
}

func TestNodeDCUnknown(t *testing.T) {
	c := NewCluster(Layout{NodesPerDC: 1, Clients: 0, ClientDC: -1})
	if _, ok := c.NodeDC("ghost"); ok {
		t.Fatal("unknown node resolved to a DC")
	}
}
