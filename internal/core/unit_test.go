package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

func TestDecidedLogFirstWriteWins(t *testing.T) {
	l := newDecidedLog(4, 0)
	now := time.Unix(0, 0)
	id := OptionID{Tx: "t1", Key: "k"}
	l.record(id, DecAccept, Option{}, false, now)
	l.record(id, DecReject, Option{}, false, now) // ignored
	if d, ok := l.get(id); !ok || d != DecAccept {
		t.Fatalf("decision overwritten: %v %v", d, ok)
	}
}

func TestDecidedLogLegacyEviction(t *testing.T) {
	l := newDecidedLog(3, 0)
	start := time.Unix(0, 0)
	// Over the count limit but inside the retention horizon: nothing
	// may be forgotten (late visibility could still be re-delivered).
	for i := 0; i < 5; i++ {
		l.record(OptionID{Tx: TxID(fmt.Sprintf("t%d", i)), Key: "k"}, DecAccept, Option{}, false,
			start.Add(time.Duration(i)*time.Second))
	}
	l.compactLegacy(start.Add(5 * time.Second))
	if len(l.byID) != 5 || len(l.order) != 5 {
		t.Fatalf("entries inside the retention horizon evicted: %d/%d", len(l.byID), len(l.order))
	}
	// Once the oldest entries age past retention, the count limit
	// evicts them.
	late := start.Add(l.retention + 10*time.Second)
	l.record(OptionID{Tx: "t5", Key: "k"}, DecAccept, Option{}, false, late)
	l.compactLegacy(late)
	if len(l.order) != 3 {
		t.Fatalf("aged-out entries not evicted down to limit: %d", len(l.order))
	}
	if _, ok := l.get(OptionID{Tx: "t0", Key: "k"}); ok {
		t.Fatal("oldest aged-out entry not evicted")
	}
	if _, ok := l.get(OptionID{Tx: "t5", Key: "k"}); !ok {
		t.Fatal("newest entry missing")
	}
}

// compact releases only entries that are BOTH aged past retention and
// acked by every peer summary; unacked entries survive any age (the
// retention-is-a-cache-knob contract).
func TestDecidedLogAckGatedCompaction(t *testing.T) {
	l := newDecidedLog(2, 0)
	start := time.Unix(0, 0)
	for i := 0; i < 6; i++ {
		opt := Option{
			Tx:     TxID(fmt.Sprintf("c%d#1", i)),
			KeySeq: 1,
			Update: record.Commutative("k", map[string]int64{"x": -1}),
		}
		l.record(opt.ID(), DecAccept, opt, true, start)
	}
	late := start.Add(l.retention + time.Minute)
	// Nothing acked: nothing released, regardless of age or count.
	if got := l.compact(late, func(decidedEntry) bool { return false }); got != 0 {
		t.Fatalf("released %d unacked entries", got)
	}
	if len(l.order) != 6 {
		t.Fatalf("unacked entries evicted: %d left", len(l.order))
	}
	// Ack lanes c0..c3: exactly those become releasable.
	acked := func(e decidedEntry) bool { return e.lane < "c4" }
	if got := l.compact(late, acked); got != 4 {
		t.Fatalf("released %d, want 4", got)
	}
	if _, ok := l.get(OptionID{Tx: "c4#1", Key: "k"}); !ok {
		t.Fatal("unacked entry lost")
	}
	// Aged but acked inside retention: still held (cache courtesy).
	if got := l.compact(start, func(decidedEntry) bool { return true }); got != 0 {
		t.Fatalf("released %d entries inside retention", got)
	}
}

func TestDecidedLogEntryKeepsOption(t *testing.T) {
	l := newDecidedLog(4, 0)
	opt := Option{Tx: "t", Update: record.Commutative("k", map[string]int64{"x": -1})}
	l.record(opt.ID(), DecAccept, opt, true, time.Unix(0, 0))
	e, ok := l.entry(opt.ID())
	if !ok || !e.HasOpt || e.Opt.Update.Deltas["x"] != -1 {
		t.Fatalf("entry = %+v %v", e, ok)
	}
}

func TestDemarcationLimits(t *testing.T) {
	q := paxos.NewQuorum(5) // slack = (N-QF)/N = 1/5
	cases := []struct {
		min, base, want int64
	}{
		{0, 100, 20},  // paper's L = (N-QF)/N * X
		{0, 0, 0},     // no headroom
		{0, 4, 1},     // ceil(4/5) = 1
		{10, 110, 30}, // shifted lower bound
		{0, 1, 1},     // ceil(1/5)
		{5, 3, 5},     // base below bound: limit pins to the bound
	}
	for _, c := range cases {
		if got := DemarcationLow(c.min, c.base, q); got != c.want {
			t.Errorf("DemarcationLow(%d,%d) = %d, want %d", c.min, c.base, got, c.want)
		}
	}
	// Upper mirror.
	if got := DemarcationHigh(100, 0, q); got != 80 {
		t.Errorf("DemarcationHigh(100,0) = %d, want 80", got)
	}
	if got := DemarcationHigh(100, 100, q); got != 100 {
		t.Errorf("demarcationHigh at the bound = %d, want 100", got)
	}
}

// The demarcation limit must never be looser than the true bound and
// never exceed the base (else nothing could ever be accepted).
func TestDemarcationLimitSafeRange(t *testing.T) {
	q := paxos.NewQuorum(5)
	f := func(min int16, head uint16) bool {
		m := int64(min)
		base := m + int64(head)
		l := DemarcationLow(m, base, q)
		return l >= m && l <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// unitNode builds a single storage node with a null network for
// direct handler-level tests.
func unitNode(t *testing.T, mode Mode, cons []record.Constraint) (*StorageNode, *simnet.Net) {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 1, ClientDC: -1})
	net := simnet.New(simnet.Options{Latency: cl.Latency(), Seed: 9})
	cfg := Defaults(mode)
	cfg.PendingTimeout = 0
	cfg.Constraints = cons
	n := NewStorageNode(topology.StorageID(topology.USWest, 0), topology.USWest, net, cl, cfg, kv.NewMemory())
	return n, net
}

func TestEvalPhysicalValidRead(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	_ = n.store.Put("k", record.Value{Attrs: map[string]int64{"x": 1}}, 3)
	ok, _ := n.evalPhysical(nil, Option{Update: record.Physical("k", 3, record.Value{})})
	if ok != DecAccept {
		t.Fatal("matching vread rejected")
	}
	stale, _ := n.evalPhysical(nil, Option{Update: record.Physical("k", 2, record.Value{})})
	if stale != DecReject {
		t.Fatal("stale vread accepted")
	}
	future, _ := n.evalPhysical(nil, Option{Update: record.Physical("k", 9, record.Value{})})
	if future != DecReject {
		t.Fatal("future vread accepted")
	}
}

func TestEvalPhysicalValidSingle(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	_ = n.store.Put("k", record.Value{}, 1)
	pending := []VotedOption{{
		Opt:      Option{Tx: "other", Update: record.Physical("k", 1, record.Value{})},
		Decision: DecAccept,
	}}
	if d, _ := n.evalPhysical(pending, Option{Tx: "me", Update: record.Physical("k", 1, record.Value{})}); d != DecReject {
		t.Fatal("option accepted despite outstanding option (deadlock-avoidance violated)")
	}
	// A rejected pending option does not block.
	pending[0].Decision = DecReject
	if d, _ := n.evalPhysical(pending, Option{Tx: "me", Update: record.Physical("k", 1, record.Value{})}); d != DecAccept {
		t.Fatal("rejected pending option blocked a new option")
	}
}

func TestEvalPhysicalConstraint(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, []record.Constraint{record.MinBound("stock", 0)})
	_ = n.store.Put("k", record.Value{Attrs: map[string]int64{"stock": 5}}, 1)
	bad := Option{Update: record.Physical("k", 1, record.Value{Attrs: map[string]int64{"stock": -1}})}
	if d, _ := n.evalPhysical(nil, bad); d != DecReject {
		t.Fatal("constraint-violating physical write accepted")
	}
}

func TestEvalCommutativeModes(t *testing.T) {
	for _, mode := range []Mode{ModeFast, ModeMulti} {
		n, _ := unitNode(t, mode, nil)
		opt := Option{Update: record.Commutative("k", map[string]int64{"x": -1})}
		if d, _ := n.evalCommutative(nil, opt, true); d != DecReject {
			t.Fatalf("mode %v accepted a commutative update", mode)
		}
	}
}

func TestEvalCommutativeBlockedByPhysical(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	pending := []VotedOption{{
		Opt:      Option{Tx: "p", Update: record.Physical("k", 0, record.Value{})},
		Decision: DecAccept,
	}}
	opt := Option{Update: record.Commutative("k", map[string]int64{"x": -1})}
	if d, _ := n.evalCommutative(pending, opt, true); d != DecReject {
		t.Fatal("commutative accepted over an outstanding physical rewrite")
	}
}

func TestEvalCommutativeDemarcationFastVsClassic(t *testing.T) {
	cons := []record.Constraint{record.MinBound("stock", 0)}
	n, _ := unitNode(t, ModeMDCC, cons)
	_ = n.store.Put("k", record.Value{Attrs: map[string]int64{"stock": 10}}, 1)
	// Fast limit: L = ceil(10/5) = 2, so only 8 units available per
	// node; classic can use all 10.
	big := Option{Tx: "t", Update: record.Commutative("k", map[string]int64{"stock": -9})}
	if d, _ := n.evalCommutative(nil, big, true); d != DecReject {
		t.Fatal("fast ballot accepted a delta beyond the demarcation limit")
	}
	if d, _ := n.evalCommutative(nil, big, false); d != DecAccept {
		t.Fatal("classic ballot rejected a delta within the true bound")
	}
	over := Option{Tx: "t", Update: record.Commutative("k", map[string]int64{"stock": -11})}
	if d, _ := n.evalCommutative(nil, over, false); d != DecReject {
		t.Fatal("classic ballot accepted a constraint-violating delta")
	}
}

func TestEvalCommutativeCountsPending(t *testing.T) {
	cons := []record.Constraint{record.MinBound("stock", 0)}
	n, _ := unitNode(t, ModeMDCC, cons)
	_ = n.store.Put("k", record.Value{Attrs: map[string]int64{"stock": 10}}, 1)
	pending := []VotedOption{{
		Opt:      Option{Tx: "p", Update: record.Commutative("k", map[string]int64{"stock": -5})},
		Decision: DecAccept,
	}}
	// 10 - 5 pending - 4 = 1 < L=2 → reject in fast.
	next := Option{Tx: "q", Update: record.Commutative("k", map[string]int64{"stock": -4})}
	if d, _ := n.evalCommutative(pending, next, true); d != DecReject {
		t.Fatal("fast ballot ignored pending decrements")
	}
	// But -3 leaves 2 = L → accept.
	ok := Option{Tx: "q", Update: record.Commutative("k", map[string]int64{"stock": -3})}
	if d, _ := n.evalCommutative(pending, ok, true); d != DecAccept {
		t.Fatal("fast ballot over-rejected within the limit")
	}
	// Increments don't consume lower-bound headroom.
	inc := Option{Tx: "r", Update: record.Commutative("k", map[string]int64{"stock": +100})}
	if d, _ := n.evalCommutative(pending, inc, true); d != DecAccept {
		t.Fatal("increment rejected under a lower bound")
	}
}

func TestAcceptorPhase1aPromise(t *testing.T) {
	n, net := unitNode(t, ModeMDCC, nil)
	var got []MsgPhase1b
	net.Register("probe", func(e transport.Envelope) {
		if m, ok := e.Msg.(MsgPhase1b); ok {
			got = append(got, m)
		}
	})
	b1 := paxos.Classic(1, "probe")
	n.onPhase1a("probe", MsgPhase1a{Key: "k", Ballot: b1})
	net.Run()
	if len(got) != 1 || got[0].Ballot.Cmp(b1) != 0 {
		t.Fatalf("phase1b = %+v", got)
	}
	// A lower ballot gets the higher promise back (nack).
	b0 := paxos.Classic(0, "loser")
	n.onPhase1a("probe", MsgPhase1a{Key: "k", Ballot: b0})
	net.Run()
	if len(got) != 2 || got[1].Ballot.Cmp(b1) != 0 {
		t.Fatalf("nack should echo the promised ballot: %+v", got[1])
	}
}

func TestAcceptorPhase2aRespectsPromise(t *testing.T) {
	n, net := unitNode(t, ModeMDCC, nil)
	var got []MsgPhase2b
	net.Register("ldr", func(e transport.Envelope) {
		if m, ok := e.Msg.(MsgPhase2b); ok {
			got = append(got, m)
		}
	})
	high := paxos.Classic(5, "other")
	n.onPhase1a("ldr", MsgPhase1a{Key: "k", Ballot: high})
	low := paxos.Classic(2, "ldr")
	n.onPhase2a("ldr", MsgPhase2a{Key: "k", Ballot: low, Seq: 1})
	net.Run()
	var p2 *MsgPhase2b
	for i := range got {
		p2 = &got[i]
	}
	if p2 == nil || p2.OK {
		t.Fatalf("phase2a under a higher promise must be refused: %+v", p2)
	}
	if p2.Promised.Cmp(high) != 0 {
		t.Fatalf("refusal should report the promised ballot, got %v", p2.Promised)
	}
}

func TestVisibilityIdempotent(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	opt := Option{Tx: "t", Update: record.Commutative("k", map[string]int64{"x": -1})}
	vis := MsgVisibility{Opt: opt, Commit: true}
	n.onVisibility(vis)
	n.onVisibility(vis)
	n.onVisibility(vis)
	v, ver, _ := n.store.Get("k")
	if v.Attr("x") != -1 || ver != 1 {
		t.Fatalf("triple visibility applied %d times (x=%d v%d)", ver, v.Attr("x"), ver)
	}
}

func TestVisibilityAbortDiscards(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	_ = n.store.Put("k", record.Value{Attrs: map[string]int64{"x": 5}}, 1)
	opt := Option{Tx: "t", Update: record.Physical("k", 1, record.Value{Attrs: map[string]int64{"x": 99}})}
	n.onVisibility(MsgVisibility{Opt: opt, Commit: false})
	v, ver, _ := n.store.Get("k")
	if v.Attr("x") != 5 || ver != 1 {
		t.Fatalf("abort visibility mutated the store: %v v%d", v, ver)
	}
	// A later commit for the same option is ignored (decision final).
	n.onVisibility(MsgVisibility{Opt: opt, Commit: true})
	if v, _, _ := n.store.Get("k"); v.Attr("x") != 5 {
		t.Fatal("post-abort commit applied")
	}
}

func TestPhysicalVisibilitySupersededSkipped(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	_ = n.store.Put("k", record.Value{Attrs: map[string]int64{"x": 3}}, 3)
	// A late visibility for version 2 (read version 1) must not roll back.
	old := Option{Tx: "old", Update: record.Physical("k", 1, record.Value{Attrs: map[string]int64{"x": 1}})}
	n.onVisibility(MsgVisibility{Opt: old, Commit: true})
	v, ver, _ := n.store.Get("k")
	if ver != 3 || v.Attr("x") != 3 {
		t.Fatalf("stale visibility rolled back the record: %v v%d", v, ver)
	}
}

func TestInitialBallotByMode(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	if b := n.initialBallot("k"); !b.Fast || b.N != 0 {
		t.Fatalf("MDCC initial ballot = %v, want fast:0", b)
	}
	nm, _ := unitNode(t, ModeMulti, nil)
	if b := nm.initialBallot("k"); b.Fast || b.N != 1 {
		t.Fatalf("Multi initial ballot = %v, want classic:1", b)
	}
}

func TestDefaultMasterDCUniform(t *testing.T) {
	counts := make([]int, topology.NumDCs)
	for i := 0; i < 5000; i++ {
		dc := DefaultMasterDC(record.Key(fmt.Sprintf("item/%06d", i)))
		counts[dc]++
	}
	for dc, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("master distribution skewed: dc%d has %d of 5000", dc, c)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeMDCC.String() != "MDCC" || ModeFast.String() != "Fast" || ModeMulti.String() != "Multi" {
		t.Fatal("mode names wrong")
	}
	if Mode(99).String() != "mode?" {
		t.Fatal("unknown mode name")
	}
	if DecAccept.String() != "accept" || DecReject.String() != "reject" || DecUnknown.String() != "unknown" {
		t.Fatal("decision names wrong")
	}
}
