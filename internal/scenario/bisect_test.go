package scenario

import (
	"testing"
	"time"

	"mdcc/internal/topology"
)

// TestFaultPrimitiveInvariants drives each fault primitive (and the
// combinations that have historically found protocol bugs) in
// isolation at a scale larger than the smoke runs, checking both
// run-to-run determinism and every internal/check invariant. Each of
// these cases has caught a real bug: count-bounded decided-log
// eviction (drops), lost visibility across Phase2a vote wipes
// (partition), sweep disarming by votedAt refresh (drops), forked
// commutative lineages collapsed by version-max adoption (drop+dup),
// and classic-ballot votes judged by the fast-quorum threshold
// (drop+partition double commit).
func TestFaultPrimitiveInvariants(t *testing.T) {
	const (
		clients  = 40
		duration = 15 * time.Second
	)
	mk := func(name string, nem func(r *Run)) *Scenario {
		return &Scenario{
			Name:     name,
			Workload: mixedWorkload,
			Clients:  clients,
			Duration: duration,
			Nemesis:  nem,
		}
	}
	cases := []*Scenario{
		mk("drops", func(r *Run) {
			r.At(frac(r, 0.10), "8% loss", func() { r.Net.SetDropProb(0.08) })
		}),
		mk("dups", func(r *Run) {
			r.At(frac(r, 0.10), "8% dup", func() { r.Net.SetDupProb(0.08) })
		}),
		mk("reorder", func(r *Run) {
			r.At(frac(r, 0.10), "15% reorder", func() { r.Net.SetReorder(0.15, 100*time.Millisecond) })
		}),
		mk("drift", func(r *Run) {
			r.At(frac(r, 0.15), "±30% drift", func() {
				r.Net.SetDrift(r.Cluster.Storage[0].ID, 0.3)
				r.Net.SetDrift(r.Cluster.Storage[len(r.Cluster.Storage)-1].ID, -0.3)
			})
		}),
		mk("crash", func(r *Run) {
			r.At(frac(r, 0.40), "crash ap-tk", func() { r.CrashStorage(len(r.Cluster.Storage) - 1) })
			r.At(frac(r, 0.70), "restart ap-tk", func() { r.RestartStorage(len(r.Cluster.Storage) - 1) })
		}),
		mk("drop-dup", func(r *Run) {
			r.At(frac(r, 0.10), "loss+dup", func() {
				r.Net.SetDropProb(0.08)
				r.Net.SetDupProb(0.08)
			})
		}),
		mk("drop-partition", func(r *Run) {
			r.At(frac(r, 0.10), "8% loss", func() { r.Net.SetDropProb(0.08) })
			r.At(frac(r, 0.40), "cut eu-ie", func() {
				r.Net.Partition(r.SideIDs(topology.EUIreland), r.OtherSideIDs(topology.EUIreland))
			})
			r.At(frac(r, 0.60), "heal", func() { r.Net.HealAll() })
		}),
	}
	for _, s := range cases {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			o := Options{Seed: *seedFlag, Clients: clients, Duration: duration, Faults: true}
			a, err := s.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Passed() {
				t.Errorf("invariants violated: %v (unresolved=%d)", a.Violations, a.Unresolved)
			}
			if a.Commits == 0 {
				t.Error("nothing committed")
			}
			b, err := s.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Net.Delivered != b.Net.Delivered {
				t.Errorf("nondeterministic: commits %d/%d aborts %d/%d delivered %d/%d",
					a.Commits, b.Commits, a.Aborts, b.Aborts, a.Net.Delivered, b.Net.Delivered)
			}
		})
	}
}
