package gateway

import (
	"errors"
	"testing"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/ring"
)

// TestStaleEpochRefusedWithWrongShard pins the epoch fence: a commit
// routed under a stale ring epoch is refused with a typed
// ring.ErrWrongShard carrying the current epoch, before the
// transaction enters the protocol; the same commit under the fresh
// epoch proceeds normally.
func TestStaleEpochRefusedWithWrongShard(t *testing.T) {
	w := newTestWorld(t, Tuning{}, nil)
	key := record.Key("item/fence")
	w.preload(key, record.Value{Attrs: map[string]int64{"v": 1}})
	cur := w.cl.Ring().Epoch()

	var fenceErr error
	var settled bool
	w.net.At(0, func() {
		w.gw.CommitAt(cur+1, []record.Update{record.Physical(key, 1, record.Value{Attrs: map[string]int64{"v": 2}})},
			func(ok bool, err error) {
				settled = true
				if ok {
					t.Error("stale-epoch commit reported committed")
				}
				fenceErr = err
			})
	})
	w.net.RunFor(time.Second)
	if !settled {
		t.Fatal("stale-epoch commit never settled")
	}
	var ws ring.ErrWrongShard
	if !errors.As(fenceErr, &ws) {
		t.Fatalf("stale-epoch refusal error = %v, want ring.ErrWrongShard", fenceErr)
	}
	if ws.Epoch != cur {
		t.Fatalf("ErrWrongShard carries epoch %d, want current %d", ws.Epoch, cur)
	}
	if m := w.gw.Metrics(); m.WrongShardRetries < 1 {
		t.Fatalf("WrongShardRetries = %d, want >= 1", m.WrongShardRetries)
	}

	// The same write under the current epoch commits.
	var ok2 bool
	w.net.At(0, func() {
		w.gw.CommitAt(cur, []record.Update{record.Physical(key, 1, record.Value{Attrs: map[string]int64{"v": 2}})},
			func(ok bool, err error) {
				if err != nil {
					t.Errorf("fresh-epoch commit error: %v", err)
				}
				ok2 = ok
			})
	})
	w.net.RunFor(10 * time.Second)
	if !ok2 {
		t.Fatal("fresh-epoch commit did not commit")
	}
}

// TestFreezeShardsFencesAdmission pins the move-time freeze: while a
// shard slice is frozen, commits touching it are refused with
// ErrWrongShard naming the next epoch, commits elsewhere proceed, and
// RingPublished lifts the fence.
func TestFreezeShardsFencesAdmission(t *testing.T) {
	w := newTestWorld(t, Tuning{}, nil)
	hot := record.Key("item/moving")
	cold := record.Key("item/staying")
	w.preload(hot, record.Value{Attrs: map[string]int64{"v": 1}})
	w.preload(cold, record.Value{Attrs: map[string]int64{"v": 1}})

	next := w.cl.Ring().Epoch() + 1
	w.gw.FreezeShards(func(k record.Key) bool { return k == hot }, next)

	var hotErr error
	var coldOK bool
	w.net.At(0, func() {
		w.gw.Commit([]record.Update{record.Physical(hot, 1, record.Value{Attrs: map[string]int64{"v": 2}})},
			func(ok bool, err error) { hotErr = err })
		w.gw.Commit([]record.Update{record.Physical(cold, 1, record.Value{Attrs: map[string]int64{"v": 2}})},
			func(ok bool, err error) { coldOK = ok })
	})
	w.net.RunFor(10 * time.Second)
	var ws ring.ErrWrongShard
	if !errors.As(hotErr, &ws) || ws.Epoch != next {
		t.Fatalf("frozen-key commit error = %v, want ErrWrongShard{%d}", hotErr, next)
	}
	if !coldOK {
		t.Fatal("non-moving key was fenced by the freeze")
	}
	if n := w.gw.InflightMoving(); n != 0 {
		t.Fatalf("InflightMoving = %d after refusal, want 0", n)
	}

	w.gw.RingPublished()
	var hotOK bool
	w.net.At(0, func() {
		w.gw.Commit([]record.Update{record.Physical(hot, 1, record.Value{Attrs: map[string]int64{"v": 2}})},
			func(ok bool, err error) { hotOK = ok })
	})
	w.net.RunFor(10 * time.Second)
	if !hotOK {
		t.Fatal("freeze did not lift after RingPublished")
	}
}
