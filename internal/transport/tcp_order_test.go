package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// orderMsg is a tagged test message; Pad varies the wire size so
// large and small messages interleave on the connection.
type orderMsg struct {
	Src string
	Seq int
	Pad []byte
}

func init() { RegisterMessage(orderMsg{}) }

// TestTCPConcurrentOrdering hammers one TCP peer from many goroutines
// with interleaved large and small messages — including batch
// envelopes — and asserts the per-(from,to) ordering contract: every
// delivered message of one sender arrives in send order. Run with
// -race (CI does) to double as a concurrency audit of the transport.
func TestTCPConcurrentOrdering(t *testing.T) {
	recv := NewTCP(nil)
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	const senders = 8
	const perSender = 400

	var mu sync.Mutex
	got := make(map[string][]int)
	deliver := func(e Envelope) {
		m := e.Msg.(orderMsg)
		mu.Lock()
		got[m.Src] = append(got[m.Src], m.Seq)
		mu.Unlock()
	}
	recv.Register("sink", func(e Envelope) {
		if b, ok := e.Msg.(Batch); ok {
			for _, item := range b.Items {
				deliver(item)
			}
			return
		}
		deliver(e)
	})

	send := NewTCP(map[NodeID]string{"sink": addr})
	defer send.Close()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := fmt.Sprintf("src%d", s)
			from := NodeID(src)
			seq := 0
			for seq < perSender {
				switch seq % 3 {
				case 0: // small message
					send.Send(from, "sink", orderMsg{Src: src, Seq: seq})
					seq++
				case 1: // large message (spans many TCP segments)
					send.Send(from, "sink", orderMsg{Src: src, Seq: seq, Pad: make([]byte, 64<<10)})
					seq++
				default: // batch envelope carrying consecutive messages
					n := 4
					if seq+n > perSender {
						n = perSender - seq
					}
					b := Batch{}
					for i := 0; i < n; i++ {
						b.Items = append(b.Items, Envelope{
							From: from, To: "sink",
							Msg: orderMsg{Src: src, Seq: seq + i},
						})
					}
					send.Send(from, "sink", b)
					seq += n
				}
			}
		}()
	}
	wg.Wait()

	// Everything was enqueued; wait for delivery to drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, seqs := range got {
			total += len(seqs)
		}
		mu.Unlock()
		if total == senders*perSender {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d messages", total, senders*perSender)
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for src, seqs := range got {
		if len(seqs) != perSender {
			t.Errorf("%s: delivered %d of %d", src, len(seqs), perSender)
		}
		last := -1
		for i, seq := range seqs {
			if seq <= last {
				t.Fatalf("%s: reordered at position %d: seq %d after %d", src, i, seq, last)
			}
			last = seq
		}
	}

	st := send.Stats()
	if st.MsgsSent == 0 || st.BatchesSent == 0 || st.BytesSent == 0 {
		t.Errorf("sender stats not counting: %+v", st)
	}
	rt := recv.Stats()
	if rt.MsgsReceived == 0 || rt.BatchesReceived == 0 || rt.BytesReceived == 0 {
		t.Errorf("receiver stats not counting: %+v", rt)
	}
	if rt.BatchedReceived < rt.BatchesReceived {
		t.Errorf("batch accounting inconsistent: %+v", rt)
	}
}

// TestTCPOrderingAfterReconnect checks ordering holds across a
// connection teardown: messages sent after the peer's queue died are
// delivered via a fresh connection, still in order per sender.
func TestTCPOrderingAfterReconnect(t *testing.T) {
	recv := NewTCP(nil)
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var mu sync.Mutex
	var got []int
	recv.Register("sink", func(e Envelope) {
		mu.Lock()
		got = append(got, e.Msg.(orderMsg).Seq)
		mu.Unlock()
	})

	send := NewTCP(map[NodeID]string{"sink": addr})
	defer send.Close()

	for i := 0; i < 10; i++ {
		send.Send("a", "sink", orderMsg{Src: "a", Seq: i})
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 10 })

	// Tear the sender's connection down under it.
	send.DropPeerConns()

	for i := 10; i < 20; i++ {
		send.Send("a", "sink", orderMsg{Src: "a", Seq: i})
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 20 })

	mu.Lock()
	defer mu.Unlock()
	last := -1
	for _, seq := range got {
		if seq <= last {
			t.Fatalf("reordered across reconnect: %v", got)
		}
		last = seq
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
