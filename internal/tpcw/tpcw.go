// Package tpcw implements the TPC-W benchmark at the database level,
// as the paper uses it (§5.2): all 14 web interactions issue their
// database operations against the uniform client interface, HTML
// rendering is skipped, emulated browsers run with no think time, and
// the most write-heavy profile (the "ordering" mix) stresses the
// system. The only transaction benefiting from commutativity is the
// product-buy (Buy Confirm), which decrements the stock of each item
// in the shopping cart under the constraint stock >= 0.
package tpcw

import (
	"fmt"
	"math/rand"

	"mdcc/internal/kv"
	"mdcc/internal/mtx"
	"mdcc/internal/record"
	"mdcc/internal/topology"
)

// Attribute names.
const (
	AttrStock = "stock"
	AttrPrice = "price" // cents
	AttrQty   = "qty"
	AttrTotal = "total"
)

// Constraint returns TPC-W's stock >= 0 rule.
func Constraint() record.Constraint { return record.MinBound(AttrStock, 0) }

// Interaction enumerates the 14 TPC-W web interactions.
type Interaction int

// The 14 web interactions.
const (
	Home Interaction = iota
	NewProducts
	BestSellers
	ProductDetail
	SearchRequest
	SearchResults
	ShoppingCart
	CustomerRegistration
	BuyRequest
	BuyConfirm
	OrderInquiry
	OrderDisplay
	AdminRequest
	AdminConfirm
	numInteractions
)

// String names the interaction.
func (i Interaction) String() string {
	names := [...]string{
		"Home", "NewProducts", "BestSellers", "ProductDetail",
		"SearchRequest", "SearchResults", "ShoppingCart",
		"CustomerRegistration", "BuyRequest", "BuyConfirm",
		"OrderInquiry", "OrderDisplay", "AdminRequest", "AdminConfirm",
	}
	if int(i) < len(names) {
		return names[i]
	}
	return fmt.Sprintf("WI(%d)", int(i))
}

// orderingMix is the TPC-W "ordering" profile (the write-heavy mix
// the paper runs), in basis points summing to 10000.
var orderingMix = [numInteractions]int{
	Home:                 912,
	NewProducts:          46,
	BestSellers:          46,
	ProductDetail:        1235,
	SearchRequest:        1453,
	SearchResults:        1308,
	ShoppingCart:         1353,
	CustomerRegistration: 1286,
	BuyRequest:           1273,
	BuyConfirm:           1018,
	OrderInquiry:         25,
	OrderDisplay:         22,
	AdminRequest:         12,
	AdminConfirm:         11,
}

// Options shapes the workload.
type Options struct {
	// Items is the scale factor (paper: 10,000).
	Items int
	// CartMax bounds cart sizes (spec-ish small carts).
	CartMax int
}

// Defaults returns the paper's TPC-W parameters.
func Defaults() Options { return Options{Items: 10000, CartMax: 3} }

// browser is one emulated browser's session state.
type browser struct {
	client    int
	cart      map[int]int64 // item index → qty (mirror of the cart record)
	custSeq   int
	orderSeq  int
	lastOrder record.Key
}

// Workload implements mtx.Workload.
type Workload struct {
	opts     Options
	browsers map[int]*browser
	// interactions counts issued WIs (observability in harness logs).
	interactions [numInteractions]int64
}

// New builds a TPC-W workload.
func New(opts Options) *Workload {
	if opts.Items <= 0 {
		opts.Items = 10000
	}
	if opts.CartMax <= 0 {
		opts.CartMax = 3
	}
	return &Workload{opts: opts, browsers: make(map[int]*browser)}
}

// Name implements mtx.Workload.
func (w *Workload) Name() string { return "tpcw" }

// ItemKey / CustKey / CartKey / OrderKey name records.
func ItemKey(i int) record.Key { return record.Key(fmt.Sprintf("item/%06d", i)) }

// CustKey names a registered customer record.
func CustKey(client, seq int) record.Key {
	return record.Key(fmt.Sprintf("cust/%04d-%06d", client, seq))
}

// CartKey names a browser's (single, reused) shopping cart.
func CartKey(client int) record.Key {
	return record.Key(fmt.Sprintf("cart/%04d", client))
}

// OrderKey names an order.
func OrderKey(client, seq int) record.Key {
	return record.Key(fmt.Sprintf("order/%04d-%06d", client, seq))
}

// Preload implements mtx.Workload: the item table (other tables are
// created by the interactions themselves).
func (w *Workload) Preload(rng *rand.Rand) []kv.Entry {
	entries := make([]kv.Entry, 0, w.opts.Items)
	for i := 0; i < w.opts.Items; i++ {
		entries = append(entries, kv.Entry{
			Key: ItemKey(i),
			Value: record.Value{
				Attrs: map[string]int64{
					AttrStock: 5000 + rng.Int63n(5000),
					AttrPrice: 100 + rng.Int63n(9900),
				},
				Blob: []byte(fmt.Sprintf("item-%06d title/author payload", i)),
			},
			Version: 1,
		})
	}
	return entries
}

// Interactions returns per-WI issue counts.
func (w *Workload) Interactions() map[string]int64 {
	out := make(map[string]int64, int(numInteractions))
	for i := Interaction(0); i < numInteractions; i++ {
		if w.interactions[i] > 0 {
			out[i.String()] = w.interactions[i]
		}
	}
	return out
}

func (w *Workload) browserFor(client int) *browser {
	b, ok := w.browsers[client]
	if !ok {
		b = &browser{client: client, cart: make(map[int]int64)}
		w.browsers[client] = b
	}
	return b
}

// pick chooses the next interaction per the ordering mix.
func pick(rng *rand.Rand) Interaction {
	n := rng.Intn(10000)
	acc := 0
	for i := Interaction(0); i < numInteractions; i++ {
		acc += orderingMix[i]
		if n < acc {
			return i
		}
	}
	return Home
}

// Next implements mtx.Workload.
func (w *Workload) Next(client int, dc topology.DC, rng *rand.Rand) mtx.Txn {
	b := w.browserFor(client)
	wi := pick(rng)
	w.interactions[wi]++
	switch wi {
	case Home:
		return w.readKeys(w.promoKeys(rng, 5))
	case NewProducts:
		return w.readKeys(w.promoKeys(rng, 10))
	case BestSellers:
		return w.readKeys(w.promoKeys(rng, 10))
	case ProductDetail:
		return w.readKeys(w.promoKeys(rng, 1))
	case SearchRequest:
		return w.readKeys(w.promoKeys(rng, 1))
	case SearchResults:
		return w.readKeys(w.promoKeys(rng, 5))
	case ShoppingCart:
		return w.shoppingCart(b, rng)
	case CustomerRegistration:
		return w.customerRegistration(b)
	case BuyRequest:
		return w.buyRequest(b, rng)
	case BuyConfirm:
		return w.buyConfirm(b, rng)
	case OrderInquiry, OrderDisplay:
		if b.lastOrder == "" {
			return w.readKeys(w.promoKeys(rng, 1))
		}
		return w.readKeys([]record.Key{b.lastOrder})
	case AdminRequest:
		return w.readKeys(w.promoKeys(rng, 1))
	case AdminConfirm:
		return w.adminConfirm(rng)
	default:
		return w.readKeys(w.promoKeys(rng, 1))
	}
}

func (w *Workload) promoKeys(rng *rand.Rand, n int) []record.Key {
	keys := make([]record.Key, 0, n)
	for len(keys) < n {
		keys = append(keys, ItemKey(rng.Intn(w.opts.Items)))
	}
	return keys
}

// readKeys is a read-only interaction over a fixed key set.
func (w *Workload) readKeys(keys []record.Key) mtx.Txn {
	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		remaining := len(keys)
		if remaining == 0 {
			done(mtx.TxnResult{Committed: true, Write: false})
			return
		}
		for _, k := range keys {
			c.Read(k, func(record.Value, record.Version, bool) {
				remaining--
				if remaining == 0 {
					done(mtx.TxnResult{Committed: true, Write: false})
				}
			})
		}
	}
}

// shoppingCart adds 1..CartMax random items to the browser's cart and
// persists the cart record (read current version, write back).
func (w *Workload) shoppingCart(b *browser, rng *rand.Rand) mtx.Txn {
	adds := make(map[int]int64)
	for i := 0; i < 1+rng.Intn(w.opts.CartMax); i++ {
		adds[rng.Intn(w.opts.Items)] = 1 + rng.Int63n(3)
	}
	key := CartKey(b.client)
	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		c.Read(key, func(val record.Value, ver record.Version, ok bool) {
			next := val.Clone()
			if next.Attrs == nil {
				next.Attrs = make(map[string]int64)
			}
			for it, q := range adds {
				next.Attrs[fmt.Sprintf("line_%06d", it)] += q
			}
			c.Commit([]record.Update{record.Physical(key, ver, next)}, func(ok bool) {
				if ok {
					for it, q := range adds {
						b.cart[it] += q
					}
				}
				done(mtx.TxnResult{Committed: ok, Write: true})
			})
		})
	}
}

// customerRegistration inserts a fresh customer row.
func (w *Workload) customerRegistration(b *browser) mtx.Txn {
	b.custSeq++
	key := CustKey(b.client, b.custSeq)
	val := record.Value{
		Attrs: map[string]int64{"discount": int64(b.custSeq % 30)},
		Blob:  []byte("customer name/address/phone payload"),
	}
	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		c.Commit([]record.Update{record.Insert(key, val)}, func(ok bool) {
			done(mtx.TxnResult{Committed: ok, Write: true})
		})
	}
}

// buyRequest reads the cart and customer and stamps the cart with
// shipping data (a small write).
func (w *Workload) buyRequest(b *browser, rng *rand.Rand) mtx.Txn {
	key := CartKey(b.client)
	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		c.Read(key, func(val record.Value, ver record.Version, ok bool) {
			next := val.Clone()
			if next.Attrs == nil {
				next.Attrs = make(map[string]int64)
			}
			next.Attrs["ship"] = rng.Int63n(5)
			c.Commit([]record.Update{record.Physical(key, ver, next)}, func(ok bool) {
				done(mtx.TxnResult{Committed: ok, Write: true})
			})
		})
	}
}

// buyConfirm is the product-buy: decrement each cart line's stock
// (commutative where supported, read-modify-write otherwise), insert
// the order, and reset the cart.
func (w *Workload) buyConfirm(b *browser, rng *rand.Rand) mtx.Txn {
	// Snapshot and reset the browser cart; an empty cart buys one
	// impulse item (keeps the interaction meaningful).
	lines := make(map[int]int64, len(b.cart))
	for it, q := range b.cart {
		lines[it] = q
	}
	if len(lines) == 0 {
		lines[rng.Intn(w.opts.Items)] = 1
	}
	b.cart = make(map[int]int64)
	b.orderSeq++
	orderKey := OrderKey(b.client, b.orderSeq)
	b.lastOrder = orderKey

	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		orderVal := record.Value{Attrs: map[string]int64{AttrQty: 0, AttrTotal: 0}}
		for it, q := range lines {
			orderVal.Attrs[fmt.Sprintf("line_%06d", it)] = q
			orderVal.Attrs[AttrQty] += q
		}
		if mtx.Commutative(c) {
			updates := make([]record.Update, 0, len(lines)+1)
			for it, q := range lines {
				updates = append(updates, record.Commutative(ItemKey(it),
					map[string]int64{AttrStock: -q}))
			}
			updates = append(updates, record.Insert(orderKey, orderVal))
			c.Commit(updates, func(ok bool) {
				done(mtx.TxnResult{Committed: ok, Write: true})
			})
			return
		}
		// Read-modify-write path.
		items := make([]int, 0, len(lines))
		for it := range lines {
			items = append(items, it)
		}
		type rd struct {
			val record.Value
			ver record.Version
			ok  bool
		}
		reads := make([]rd, len(items))
		remaining := len(items)
		for i, it := range items {
			i, it := i, it
			c.Read(ItemKey(it), func(val record.Value, ver record.Version, ok bool) {
				reads[i] = rd{val, ver, ok}
				remaining--
				if remaining > 0 {
					return
				}
				updates := make([]record.Update, 0, len(items)+1)
				for j, jt := range items {
					r := reads[j]
					if !r.ok || r.val.Attr(AttrStock) < lines[jt] {
						done(mtx.TxnResult{Committed: false, Write: true})
						return
					}
					updates = append(updates, record.Physical(ItemKey(jt), r.ver,
						r.val.WithAttr(AttrStock, r.val.Attr(AttrStock)-lines[jt])))
				}
				updates = append(updates, record.Insert(orderKey, orderVal))
				c.Commit(updates, func(ok bool) {
					done(mtx.TxnResult{Committed: ok, Write: true})
				})
			})
		}
	}
}

// adminConfirm updates an item's price (a physical read-modify-write
// on a random item).
func (w *Workload) adminConfirm(rng *rand.Rand) mtx.Txn {
	key := ItemKey(rng.Intn(w.opts.Items))
	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		c.Read(key, func(val record.Value, ver record.Version, ok bool) {
			if !ok {
				done(mtx.TxnResult{Committed: false, Write: true})
				return
			}
			next := val.WithAttr(AttrPrice, 100+rng.Int63n(9900))
			c.Commit([]record.Update{record.Physical(key, ver, next)}, func(ok bool) {
				done(mtx.TxnResult{Committed: ok, Write: true})
			})
		})
	}
}
