// Package btree implements an in-memory B-tree keyed by string with
// arbitrary values. It is the ordered-map substrate under
// internal/kv — the role Oracle BDB Java Edition plays in the paper's
// prototype — supporting point operations and ordered range scans
// (the storage layer range-partitions tables by key).
//
// The tree is not safe for concurrent use; internal/kv serializes
// access per storage node.
package btree

import "sort"

// degree is the minimum number of children of an internal node
// (except the root). A node holds between degree-1 and 2*degree-1 keys.
const defaultDegree = 32

// Tree is a B-tree mapping string keys to values.
type Tree struct {
	root   *node
	size   int
	degree int
}

type item struct {
	key string
	val interface{}
}

type node struct {
	items    []item
	children []*node // nil for leaves
}

// New returns an empty tree with the default branching factor.
func New() *Tree { return NewDegree(defaultDegree) }

// NewDegree returns an empty tree with minimum degree d (d >= 2).
func NewDegree(d int) *Tree {
	if d < 2 {
		panic("btree: degree must be >= 2")
	}
	return &Tree{degree: d}
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key and whether it exists.
func (t *Tree) Get(key string) (interface{}, bool) {
	n := t.root
	for n != nil {
		i, found := n.search(key)
		if found {
			return n.items[i].val, true
		}
		if n.children == nil {
			return nil, false
		}
		n = n.children[i]
	}
	return nil, false
}

// Put inserts or replaces the value under key. It reports whether the
// key was newly inserted (false means replaced).
func (t *Tree) Put(key string, val interface{}) bool {
	if t.root == nil {
		t.root = &node{items: []item{{key, val}}}
		t.size = 1
		return true
	}
	if len(t.root.items) == t.maxItems() {
		// Split the root preemptively so insertion never revisits parents.
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, key, val)
	if inserted {
		t.size++
	}
	return inserted
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key string) bool {
	if t.root == nil {
		return false
	}
	deleted := t.delete(t.root, key)
	if len(t.root.items) == 0 && t.root.children != nil {
		t.root = t.root.children[0]
	}
	if t.root != nil && len(t.root.items) == 0 && t.root.children == nil {
		t.root = nil
	}
	if deleted {
		t.size--
	}
	return deleted
}

// Ascend calls fn for each key/value in ascending key order until fn
// returns false.
func (t *Tree) Ascend(fn func(key string, val interface{}) bool) {
	t.ascendRange(t.root, "", "", false, false, fn)
}

// AscendRange calls fn for keys in [from, to) in ascending order until
// fn returns false. An empty `to` means no upper bound.
func (t *Tree) AscendRange(from, to string, fn func(key string, val interface{}) bool) {
	t.ascendRange(t.root, from, to, true, to != "", fn)
}

// Keys returns all keys in ascending order (testing convenience).
func (t *Tree) Keys() []string {
	out := make([]string, 0, t.size)
	t.Ascend(func(k string, _ interface{}) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Min returns the smallest key, or "" if empty.
func (t *Tree) Min() (string, bool) {
	n := t.root
	if n == nil {
		return "", false
	}
	for n.children != nil {
		n = n.children[0]
	}
	return n.items[0].key, true
}

// Max returns the largest key, or "" if empty.
func (t *Tree) Max() (string, bool) {
	n := t.root
	if n == nil {
		return "", false
	}
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1].key, true
}

func (t *Tree) maxItems() int { return 2*t.degree - 1 }
func (t *Tree) minItems() int { return t.degree - 1 }

// search returns the index of key in n.items if present, else the
// child index to descend into.
func (n *node) search(key string) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
	if i < len(n.items) && n.items[i].key == key {
		return i, true
	}
	return i, false
}

// splitChild splits the full child at index i of parent p.
func (t *Tree) splitChild(p *node, i int) {
	child := p.children[i]
	mid := t.degree - 1
	median := child.items[mid]

	right := &node{}
	right.items = append(right.items, child.items[mid+1:]...)
	child.items = child.items[:mid]
	if child.children != nil {
		right.children = append(right.children, child.children[t.degree:]...)
		child.children = child.children[:t.degree]
	}

	p.items = append(p.items, item{})
	copy(p.items[i+1:], p.items[i:])
	p.items[i] = median

	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

func (t *Tree) insertNonFull(n *node, key string, val interface{}) bool {
	for {
		i, found := n.search(key)
		if found {
			n.items[i].val = val
			return false
		}
		if n.children == nil {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key, val}
			return true
		}
		if len(n.children[i].items) == t.maxItems() {
			t.splitChild(n, i)
			if key == n.items[i].key {
				n.items[i].val = val
				return false
			}
			if key > n.items[i].key {
				i++
			}
		}
		n = n.children[i]
	}
}

func (t *Tree) delete(n *node, key string) bool {
	i, found := n.search(key)
	if n.children == nil {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor from the left subtree, then delete
		// the predecessor recursively (after ensuring the child can
		// spare an item).
		if len(n.children[i].items) > t.minItems() {
			pred := t.maxItem(n.children[i])
			n.items[i] = pred
			return t.deleteDescend(n, i, pred.key)
		}
		if len(n.children[i+1].items) > t.minItems() {
			succ := t.minItem(n.children[i+1])
			n.items[i] = succ
			return t.deleteDescend(n, i+1, succ.key)
		}
		t.mergeChildren(n, i)
		return t.delete(n.children[i], key)
	}
	return t.deleteDescend(n, i, key)
}

// deleteDescend ensures child i has more than minItems items (fixing
// up by borrow or merge) then recurses.
func (t *Tree) deleteDescend(n *node, i int, key string) bool {
	child := n.children[i]
	if len(child.items) <= t.minItems() {
		i = t.fixup(n, i)
		child = n.children[i]
		// Fixup may have merged the key's subtree; re-dispatch from n.
		return t.delete(n, key)
	}
	_ = child
	return t.delete(n.children[i], key)
}

// fixup grows child i of n by borrowing from a sibling or merging, and
// returns the (possibly shifted) child index that now covers the range.
func (t *Tree) fixup(n *node, i int) int {
	if i > 0 && len(n.children[i-1].items) > t.minItems() {
		// Borrow from left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, item{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if left.children != nil {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > t.minItems() {
		// Borrow from right sibling through the separator.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if right.children != nil {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	if i > 0 {
		t.mergeChildren(n, i-1)
		return i - 1
	}
	t.mergeChildren(n, i)
	return i
}

// mergeChildren merges child i, separator i, and child i+1 into child i.
func (t *Tree) mergeChildren(n *node, i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (t *Tree) maxItem(n *node) item {
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (t *Tree) minItem(n *node) item {
	for n.children != nil {
		n = n.children[0]
	}
	return n.items[0]
}

func (t *Tree) ascendRange(n *node, from, to string, useFrom, useTo bool, fn func(string, interface{}) bool) bool {
	if n == nil {
		return true
	}
	start := 0
	if useFrom {
		start, _ = n.search(from)
	}
	for i := start; i < len(n.items); i++ {
		if n.children != nil {
			if !t.ascendRange(n.children[i], from, to, useFrom, useTo, fn) {
				return false
			}
		}
		it := n.items[i]
		if useFrom && it.key < from {
			continue
		}
		if useTo && it.key >= to {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if n.children != nil {
		return t.ascendRange(n.children[len(n.children)-1], from, to, useFrom, useTo, fn)
	}
	return true
}

// checkInvariants walks the tree verifying B-tree structural
// invariants; used by tests. It panics on violation.
func (t *Tree) checkInvariants() {
	if t.root == nil {
		return
	}
	var depthOf func(n *node, depth int, isRoot bool) int
	depthOf = func(n *node, depth int, isRoot bool) int {
		if !isRoot && len(n.items) < t.minItems() {
			panic("btree: underfull node")
		}
		if len(n.items) > t.maxItems() {
			panic("btree: overfull node")
		}
		for i := 1; i < len(n.items); i++ {
			if n.items[i-1].key >= n.items[i].key {
				panic("btree: unsorted items")
			}
		}
		if n.children == nil {
			return depth
		}
		if len(n.children) != len(n.items)+1 {
			panic("btree: child count mismatch")
		}
		d := -1
		for _, c := range n.children {
			cd := depthOf(c, depth+1, false)
			if d == -1 {
				d = cd
			} else if d != cd {
				panic("btree: uneven leaf depth")
			}
		}
		return d
	}
	depthOf(t.root, 0, true)
}
