package core

import (
	"math/rand"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
	"mdcc/internal/wal"
)

// StorageNode is one replica: the Paxos acceptor for every record it
// stores, plus the leader role for records mastered in its data
// center (masters are placed on storage nodes, §3.1.1). All methods
// run in transport handler context.
type StorageNode struct {
	id    transport.NodeID
	dc    topology.DC
	net   transport.Network
	cl    *topology.Cluster
	cfg   Config
	q     paxos.Quorum
	store *kv.Store
	recs  map[record.Key]*recState
	ldrs  map[record.Key]*leaderRec

	reqSeq     uint64
	recoveries map[uint64]*txRecovery
	syncCursor record.Key
	nSynced    int64
	oplog      *wal.Log // non-nil for durable nodes (see restart.go)
	halted     bool

	// Outbound vote batching: votes produced while dispatching one
	// inbound envelope are buffered per destination coordinator and
	// flushed as one transport.Batch when the dispatch finishes (see
	// handle / sendVote). Zero added latency: nothing is ever held
	// across dispatches.
	dispatchDepth int
	voteBuf       map[transport.NodeID][]transport.Envelope
	voteOrder     []transport.NodeID

	// Committed-visibility feed (see feed.go): per-subscriber stream
	// state and the keys dirtied by the dispatch in progress, flushed
	// alongside the vote buffers.
	feedSubs           map[transport.NodeID]*feedSub
	feedSubOrder       []transport.NodeID
	feedDirty          []record.Key
	feedDirtySet       map[record.Key]bool
	feedKeepAliveArmed bool
	feedFlushArmed     bool
	feedLastFlush      time.Time
	feedBoot           uint64 // publisher incarnation id (see MsgVisibilityFeed.Boot)

	// Counters (read via Metrics).
	nVotesAccept, nVotesReject int64
	nForwarded                 int64
	nExecuted, nDiscarded      int64
	nPhase1, nPhase2           int64
	nEnableFast                int64
	nDemarcationRejects        int64
	nSweeps                    int64
	nBatchEnvelopes            int64
	nBatchItems                int64
	nVoteBatchEnvelopes        int64
	nVoteBatchItems            int64
	nFeedMsgs                  int64
	nFeedItems                 int64
}

// recState is the acceptor's per-record Paxos state: the promised and
// accepted ballots, the unresolved votes of the current ballot (the
// cstruct), and recently decided options for idempotence/recovery.
type recState struct {
	promised paxos.Ballot
	accepted paxos.Ballot
	votes    []VotedOption
	decided  *decidedLog
	// votedAt remembers when each unresolved vote was cast, for the
	// dangling-transaction sweep.
	votedAt map[OptionID]time.Time
	// p2aSeq is the highest proposal sequence adopted in the accepted
	// ballot, so duplicated or reordered Phase2a messages cannot
	// regress the cstruct to an older snapshot.
	p2aSeq uint64
}

// NewStorageNode builds a storage node bound to id and registers its
// handler on the network.
func NewStorageNode(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, cfg Config, store *kv.Store) *StorageNode {
	n := &StorageNode{
		id:           id,
		dc:           dc,
		net:          net,
		cl:           cl,
		cfg:          cfg,
		q:            paxos.NewQuorum(cl.ReplicationFactor()),
		store:        store,
		recs:         make(map[record.Key]*recState),
		ldrs:         make(map[record.Key]*leaderRec),
		recoveries:   make(map[uint64]*txRecovery),
		voteBuf:      make(map[transport.NodeID][]transport.Envelope),
		feedSubs:     make(map[transport.NodeID]*feedSub),
		feedDirtySet: make(map[record.Key]bool),
	}
	// The feed boot id distinguishes this incarnation's stream from a
	// dead predecessor's: construction time is strictly later than any
	// prior incarnation's (restarts happen after crashes, on the real
	// clock and the virtual one), so the id changes across restarts
	// without durable state. +1 keeps it nonzero even at the simulated
	// clock's epoch (consumers use 0 as "no stream consumed yet").
	n.feedBoot = uint64(net.Now().UnixNano()) + 1
	net.Register(id, n.handle)
	if cfg.PendingTimeout > 0 {
		n.scheduleSweep()
	}
	if cfg.SyncInterval > 0 {
		n.scheduleAntiEntropy(rand.New(rand.NewSource(int64(fnvID(string(id))))))
	}
	return n
}

// ID returns the node's transport identity.
func (n *StorageNode) ID() transport.NodeID { return n.id }

// Store exposes the committed-state store (reads, tests, tools).
func (n *StorageNode) Store() *kv.Store { return n.store }

// handle dispatches every message addressed to this node. While a
// top-level dispatch runs, outbound votes are buffered per destination
// and flushed when it returns (dispatch recurses for Batch items, so
// the votes of a whole gateway-coalesced envelope share wire messages).
func (n *StorageNode) handle(env transport.Envelope) {
	if n.halted {
		return
	}
	n.dispatchDepth++
	n.dispatch(env)
	n.dispatchDepth--
	if n.dispatchDepth == 0 {
		n.flushVotes()
		n.flushFeeds()
	}
}

func (n *StorageNode) dispatch(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case transport.Batch:
		// A gateway-coalesced envelope: unpack and dispatch each item
		// with its original sender (cross-transaction batching; the
		// items preserve send order).
		n.nBatchEnvelopes++
		n.nBatchItems += int64(len(m.Items))
		for _, item := range m.Items {
			n.handle(item)
		}
	case MsgRead:
		n.onRead(env.From, m)
	case MsgProposeFast:
		n.onProposeFast(m)
	case MsgProposeBatch:
		n.onProposeBatch(m)
	case MsgVisibility:
		n.onVisibility(m)
	case MsgVisibilityBatch:
		for _, item := range m.Items {
			n.onVisibility(item)
		}
	case MsgPhase1a:
		n.onPhase1a(env.From, m)
	case MsgPhase2a:
		n.onPhase2a(env.From, m)
	case MsgEnableFast:
		n.onEnableFast(m)
	// Leader-role messages.
	case MsgProposeLeader:
		n.leaderPropose(m.Opt, false)
	case MsgStartRecovery:
		n.onStartRecovery(m)
	case MsgPhase1b:
		n.onPhase1b(env.From, m)
	case MsgPhase2b:
		n.onPhase2b(env.From, m)
	// Dangling-transaction recovery.
	case MsgRecoverOpt:
		n.onRecoverOpt(env.From, m)
	case MsgOptDecided:
		n.onOptDecided(m)
	// Committed-visibility feed (gateway read tier).
	case MsgVisibilitySub:
		n.onVisibilitySub(env.From, m)
	// Anti-entropy catch-up.
	case MsgSyncReq:
		n.onSyncReq(env.From, m)
	case MsgSyncReply:
		n.onSyncReply(m)
	}
}

// rs returns (creating lazily) the record's acceptor state. Records
// start in the implicit fast ballot, except in Multi mode where every
// record starts owned by its stable master at classic ballot 1
// (the Multi-Paxos mastership reservation over all instances).
func (n *StorageNode) rs(key record.Key) *recState {
	r, ok := n.recs[key]
	if !ok {
		r = &recState{
			promised: n.initialBallot(key),
			decided:  newDecidedLog(0),
			votedAt:  make(map[OptionID]time.Time),
		}
		r.accepted = r.promised
		n.recs[key] = r
	}
	return r
}

func (n *StorageNode) initialBallot(key record.Key) paxos.Ballot {
	if n.cfg.Mode == ModeMulti {
		return paxos.Classic(1, string(n.leaderFor(key)))
	}
	return paxos.DefaultFast
}

// leaderFor returns the record's master: the replica of the key in
// its master data center.
func (n *StorageNode) leaderFor(key record.Key) transport.NodeID {
	return n.cl.ReplicaIn(key, n.cfg.masterDC(key))
}

// onRead serves committed state only (read committed, §4.1). The
// reply piggybacks the replica's escrow snapshot so gateways bootstrap
// exact headroom accounts from any read.
func (n *StorageNode) onRead(from transport.NodeID, m MsgRead) {
	val, ver, ok := n.store.Get(m.Key)
	exists := ok && !val.Tombstone
	n.net.Send(n.id, from, MsgReadReply{
		ReqID: m.ReqID, Key: m.Key, Value: val, Version: ver, Exists: exists,
		Escrow: n.escrowSnap(m.Key, val, ver),
	})
}

// escrowSnap captures the acceptor's demarcation inputs for key: the
// committed base of every constrained attribute plus the worst-case
// pending movement of the unresolved accepted votes. Snapshots ride
// votes and read replies (the piggyback freshness channel); Version
// lets consumers order snapshots from different replicas.
func (n *StorageNode) escrowSnap(key record.Key, val record.Value, ver record.Version) EscrowSnap {
	if len(n.cfg.Constraints) == 0 {
		return EscrowSnap{}
	}
	var pending []VotedOption
	if r, ok := n.recs[key]; ok {
		pending = r.votes
	}
	snap := EscrowSnap{Valid: true, Version: ver}
	for _, con := range n.cfg.Constraints {
		down, up := pendingSums(pending, con.Attr)
		snap.Attrs = append(snap.Attrs, AttrEscrow{
			Attr: con.Attr, Base: val.Attrs[con.Attr], PendDown: down, PendUp: up,
		})
	}
	return snap
}

// pendingSums splits the accepted pending commutative deltas on attr
// into worst-case downward and upward movement (the escrow pending
// account of §3.4.2).
func pendingSums(pending []VotedOption, attr string) (down, up int64) {
	for _, v := range pending {
		if v.Decision != DecAccept || v.Opt.Update.Kind != record.KindCommutative {
			continue
		}
		d := v.Opt.Update.Deltas[attr]
		if d < 0 {
			down += d
		} else {
			up += d
		}
	}
	return down, up
}

// sendVote routes an acceptor→coordinator vote through the outbound
// vote buffer: votes produced while one inbound envelope is being
// dispatched coalesce per destination into one transport.Batch (the
// §7 batching generalized to the vote direction). With batching
// disabled (or outside a dispatch) votes are sent directly.
func (n *StorageNode) sendVote(to transport.NodeID, msg transport.Message) {
	if n.cfg.DisableBatching || n.dispatchDepth == 0 {
		n.net.Send(n.id, to, msg)
		return
	}
	if _, ok := n.voteBuf[to]; !ok {
		n.voteOrder = append(n.voteOrder, to)
	}
	n.voteBuf[to] = append(n.voteBuf[to], transport.Envelope{From: n.id, To: to, Msg: msg})
}

// flushVotes drains the per-destination vote buffers accumulated by
// the dispatch that just finished (FIFO per destination, so vote
// order per (acceptor, coordinator) pair is preserved).
func (n *StorageNode) flushVotes() {
	if len(n.voteOrder) == 0 {
		return
	}
	for _, to := range n.voteOrder {
		items := n.voteBuf[to]
		delete(n.voteBuf, to)
		if len(items) == 1 {
			n.net.Send(n.id, to, items[0].Msg)
			continue
		}
		n.nVoteBatchEnvelopes++
		n.nVoteBatchItems += int64(len(items))
		n.net.Send(n.id, to, transport.Batch{Items: items})
	}
	n.voteOrder = n.voteOrder[:0]
}

// onProposeFast handles a master-bypassing proposal (§3.3). In a fast
// ballot the acceptor votes immediately; in a classic window it
// forwards to the record's leader and tells the coordinator where it
// went.
func (n *StorageNode) onProposeFast(m MsgProposeFast) {
	n.sendVote(m.Opt.Coord, n.proposeVote(m.Opt))
}

// onProposeBatch votes on every option of a transaction destined for
// this node and answers with a single vote batch (§7 batching).
func (n *StorageNode) onProposeBatch(m MsgProposeBatch) {
	if len(m.Opts) == 0 {
		return
	}
	batch := MsgVoteBatch{Votes: make([]MsgVote, 0, len(m.Opts))}
	for _, opt := range m.Opts {
		batch.Votes = append(batch.Votes, n.proposeVote(opt))
	}
	n.sendVote(m.Opts[0].Coord, batch)
}

// proposeVote computes this acceptor's Phase2b answer for one
// proposed option and, for commutative options, piggybacks the
// record's escrow snapshot (taken after the vote, so it reflects it).
func (n *StorageNode) proposeVote(opt Option) MsgVote {
	vote := n.voteFor(opt)
	if opt.Update.Kind == record.KindCommutative && len(n.cfg.Constraints) > 0 {
		val, ver, _ := n.store.Get(opt.Update.Key)
		vote.Escrow = n.escrowSnap(opt.Update.Key, val, ver)
	}
	return vote
}

// voteFor votes on one proposed option (voting, resending, or
// forwarding to the leader).
func (n *StorageNode) voteFor(opt Option) MsgVote {
	key := opt.Update.Key
	r := n.rs(key)
	id := opt.ID()

	// Idempotence: final decisions and existing votes are resent.
	if d, ok := r.decided.get(id); ok {
		return MsgVote{OptID: id, Ballot: r.promised, Decision: d}
	}
	for _, v := range r.votes {
		if v.Opt.ID() == id {
			return MsgVote{OptID: id, Ballot: r.accepted, Decision: v.Decision}
		}
	}

	if !r.promised.Fast {
		// Classic window: the record's current leader must order this
		// option. That is whoever owns the promised ballot — after a
		// master-DC failure this is a fallback leader in a live DC,
		// not the static master.
		leader := transport.NodeID(r.promised.Leader)
		if leader == "" {
			leader = n.leaderFor(key)
		}
		n.nForwarded++
		n.net.Send(n.id, leader, MsgProposeLeader{Opt: opt})
		return MsgVote{OptID: id, Ballot: r.promised, Forwarded: true, Leader: leader}
	}

	dec := n.evalOption(r.votes, opt, true)
	n.castVote(r, opt, dec)
	return MsgVote{OptID: id, Ballot: r.promised, Decision: dec}
}

// castVote appends a vote to the record's cstruct.
func (n *StorageNode) castVote(r *recState, opt Option, dec Decision) {
	if traceOn(opt.Update.Key) {
		tracef("%v %s vote tx=%s dec=%v", n.net.Now().Unix(), n.id, opt.Tx, dec)
	}
	r.votes = append(r.votes, VotedOption{Opt: opt, Decision: dec})
	r.votedAt[opt.ID()] = n.net.Now()
	if dec == DecAccept {
		n.nVotesAccept++
	} else {
		n.nVotesReject++
	}
}

// evalOption is the paper's SetCompatible (algorithm 3, lines 83-99):
// an active accept/reject judgment of one option against the record's
// committed state and the outstanding options in `pending`. fast
// selects the quorum demarcation limits instead of the raw bounds for
// commutative updates. The same code runs on acceptors against their
// own votes (fast ballots) and on the leader against its cstruct
// (classic ballots) — classic decisions are consistent across
// replicas because they adopt the leader's cstruct verbatim.
func (n *StorageNode) evalOption(pending []VotedOption, opt Option, fast bool) Decision {
	switch opt.Update.Kind {
	case record.KindPhysical:
		return n.evalPhysical(pending, opt)
	case record.KindCommutative:
		return n.evalCommutative(pending, opt, fast)
	case record.KindReadCheck:
		// Read-set validation (§4.4): the record must still be at the
		// version the transaction read, and no outstanding write may
		// be about to change it (a pending accepted write is a
		// read-write conflict that could commit; rejecting here is
		// what makes the validation conflict-serializable rather than
		// merely version-checked). Read checks commute with each
		// other.
		_, ver, _ := n.store.Get(opt.Update.Key)
		if opt.Update.ReadVersion != ver {
			return DecReject
		}
		for _, v := range pending {
			if v.Decision == DecAccept && v.Opt.Update.Kind != record.KindReadCheck {
				return DecReject
			}
		}
		return DecAccept
	default:
		return DecReject
	}
}

func (n *StorageNode) evalPhysical(pending []VotedOption, opt Option) Decision {
	key := opt.Update.Key
	_, ver, _ := n.store.Get(key)
	// validRead: vread must match the current version; an insert
	// (ReadVersion 0) requires the record to be new (§3.2.1).
	if opt.Update.ReadVersion != ver {
		return DecReject
	}
	// validSingle: only one outstanding option per record — this is
	// also the pessimistic deadlock-avoidance policy (§3.2.2): a
	// concurrent option is rejected, never queued, so waits-for
	// cycles cannot form. Outstanding read checks block writes too
	// (the write-read conflict side of §4.4's serializability
	// extension); they only exist when an application asks for
	// serializable transactions.
	for _, v := range pending {
		if v.Decision == DecAccept {
			return DecReject
		}
	}
	// Value constraints hold trivially under version serialization;
	// still enforce them so "Fast"-mode read-modify-writes abort
	// instead of violating stock >= 0.
	for _, con := range n.cfg.Constraints {
		if x, ok := opt.Update.NewValue.Attrs[con.Attr]; ok && !con.Satisfied(x) {
			return DecReject
		}
	}
	return DecAccept
}

func (n *StorageNode) evalCommutative(pending []VotedOption, opt Option, fast bool) Decision {
	if n.cfg.Mode == ModeFast || n.cfg.Mode == ModeMulti {
		// Commutative support is the MDCC configuration's feature.
		// Fast/Multi callers should have converted to physical
		// updates; reject rather than guess.
		return DecReject
	}
	// Commutative options do not commute with an outstanding
	// physical rewrite of the same record, nor with an outstanding
	// read check (whose transaction's validity depends on the record
	// not changing).
	for _, v := range pending {
		if v.Decision == DecAccept && v.Opt.Update.Kind != record.KindCommutative {
			return DecReject
		}
	}
	val, _, _ := n.store.Get(opt.Update.Key)
	for attr, delta := range opt.Update.Deltas {
		con, ok := n.cfg.constraintFor(attr)
		if !ok {
			continue // unconstrained attributes always commute
		}
		if !n.deltaSafe(pending, val, attr, delta, con, fast) {
			if fast {
				n.nDemarcationRejects++
			}
			return DecReject
		}
	}
	return DecAccept
}

// deltaSafe decides whether accepting one more delta on attr keeps
// the constraint safe under every commit/abort permutation of the
// outstanding options (escrow, §3.4.2). In fast ballots the bound is
// tightened to the quorum demarcation limit
//
//	L = min + (N-Q_F)/N · (X - min)
//
// because each storage node only sees its own copy of the X "resources"
// and a fast quorum consumes Q_F of the N·X total per committed unit;
// the (N-Q_F)/N headroom can be stranded on other replicas. Classic
// ballots are serialized by the leader, so the raw bound applies.
func (n *StorageNode) deltaSafe(pending []VotedOption, val record.Value, attr string, delta int64, con record.Constraint, fast bool) bool {
	pendDown, pendUp := pendingSums(pending, attr)
	return DeltaSafe(val.Attrs[attr], pendDown, pendUp, delta, con, n.q, fast)
}

// DeltaSafe is the escrow admission predicate shared by acceptors and
// their mirrors (the gateway tier's headroom accounting, parity fuzz
// oracles): would accepting one more delta on top of the worst-case
// pending movement keep the constraint safe under every commit/abort
// permutation? fast selects the quorum demarcation limits instead of
// the raw bounds.
func DeltaSafe(base, pendDown, pendUp, delta int64, con record.Constraint, q paxos.Quorum, fast bool) bool {
	// Worst-case pending movement: for the lower bound, every
	// outstanding decrement commits and every increment aborts;
	// symmetric for the upper bound.
	if delta < 0 {
		pendDown += delta
	} else {
		pendUp += delta
	}
	if con.Min != nil {
		lim := *con.Min
		if fast {
			lim = DemarcationLow(*con.Min, base, q)
		}
		if base+pendDown < lim {
			return false
		}
	}
	if con.Max != nil {
		lim := *con.Max
		if fast {
			lim = DemarcationHigh(*con.Max, base, q)
		}
		if base+pendUp > lim {
			return false
		}
	}
	return true
}

// DemarcationLow computes the lower demarcation limit. With min = 0
// this is the paper's L = (N-Q_F)/N · X, rounded up (conservative).
func DemarcationLow(min, base int64, q paxos.Quorum) int64 {
	head := base - min
	if head <= 0 {
		return min
	}
	slack := int64(q.N - q.Fast)
	return min + ceilDiv(head*slack, int64(q.N))
}

// DemarcationHigh mirrors DemarcationLow for upper bounds.
func DemarcationHigh(max, base int64, q paxos.Quorum) int64 {
	head := max - base
	if head <= 0 {
		return max
	}
	slack := int64(q.N - q.Fast)
	return max - ceilDiv(head*slack, int64(q.N))
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// onVisibility executes or discards an option (§3.2.1 "Learned"
// messages). Commit applies the update and bumps the version; abort
// discards. Both record the outcome for idempotence and recovery.
func (n *StorageNode) onVisibility(m MsgVisibility) {
	key := m.Opt.Update.Key
	r := n.rs(key)
	id := m.Opt.ID()
	if _, ok := r.decided.get(id); ok {
		return // already executed or discarded
	}
	if traceOn(key) {
		_, ver, _ := n.store.Get(key)
		_, dup := r.decided.get(id)
		tracef("%v %s visibility tx=%s commit=%v ver=%d up=%s dup=%v", n.net.Now().Unix(), n.id, m.Opt.Tx, m.Commit, ver, m.Opt.Update, dup)
	}
	if m.Commit {
		r.decided.record(id, DecAccept, m.Opt, true, n.net.Now())
		n.logDecision(id, DecAccept, m.Opt, true)
		n.applyUpdate(m.Opt.Update)
		n.nExecuted++
	} else {
		r.decided.record(id, DecReject, m.Opt, true, n.net.Now())
		n.logDecision(id, DecReject, m.Opt, true)
		n.nDiscarded++
	}
	// Both outcomes feed the visibility stream: a commit changed the
	// committed value, and even an abort freed pending escrow (the
	// post-pruneVote snapshot reflects it).
	n.pruneVote(r, id)
	n.markFeedDirty(key)
	n.leaderObserveVisibility(key, id)
}

// adoptBase reconciles a fresher (or equal-version but possibly
// diverged) committed base for key received from a peer — via
// anti-entropy, a Phase2a base, or a Phase1b reply. Commutative
// records can fork: replicas apply the same committed deltas in
// different orders, so two replicas at the same version may each hold
// deltas the other lacks, and blind version-max overwrite silently
// destroys the overwritten branch's unique applies (the scenario
// harness's conservation check catches exactly this as a lost
// acknowledged commit). The base therefore carries its lineage — the
// decided options whose effects it contains — and adoption re-applies
// on top of it every commutative delta this replica executed that the
// base's lineage is missing. Reported decisions are recorded (and
// persisted) so late visibility stays idempotent. Returns whether
// local state changed.
func (n *StorageNode) adoptBase(key record.Key, base record.Value, baseVer record.Version,
	baseDecided []DecidedOption, via string) bool {
	cur, localVer, ok := n.store.Get(key)
	if baseVer < localVer {
		return false
	}
	r := n.rs(key)
	has := make(map[OptionID]bool, len(baseDecided))
	for _, d := range baseDecided {
		has[d.ID] = true
	}
	val, ver := base, baseVer
	merged := 0
	for _, id := range r.decided.order {
		e, _ := r.decided.entry(id)
		if !e.HasOpt || e.Decision != DecAccept || has[id] {
			continue
		}
		if e.Opt.Update.Kind != record.KindCommutative {
			// Only deltas are re-applied: physical lineages cannot fork
			// (vread serialization), so for keys written exclusively
			// physically a missing physical update is already superseded
			// by the fresher base. NOTE: keys mixing physical AND
			// commutative writes are outside this merge's safety
			// envelope — a commutative-heavy branch can outrank a
			// physical write by version count alone (DESIGN.md §5);
			// workloads keep key classes kind-disjoint.
			continue
		}
		val = e.Opt.Update.Apply(val)
		ver += e.Opt.Update.Span()
		merged++
	}
	if ver == localVer && merged == 0 && ok && cur.Equal(val) {
		// Possibly converged — but equal version and value alone do
		// NOT prove it: two forked lineages can coincidentally sum to
		// the same value at the same count. Skip the state rewrite
		// (and its WAL append) only when every reported decision is
		// already known here, so there is provably nothing to learn;
		// an unknown reported id falls through to a full adoption,
		// which installs the peer's base together with its lineage
		// markers and our grafted extras.
		allKnown := true
		for _, d := range baseDecided {
			if _, known := r.decided.get(d.ID); !known {
				allKnown = false
				break
			}
		}
		if allKnown {
			return false
		}
	}
	if traceOn(key) {
		tracef("%v %s adopt-%s ver=%d->%d merged=%d val=%s decided=%d",
			n.net.Now().Unix(), n.id, via, localVer, ver, merged, val, len(baseDecided))
	}
	_ = n.store.Put(key, val, ver)
	for _, d := range baseDecided {
		if r.decided.record(d.ID, d.Decision, d.Opt, d.HasOpt, n.net.Now()) {
			n.logDecision(d.ID, d.Decision, d.Opt, d.HasOpt)
		}
	}
	n.markFeedDirty(key)
	return true
}

// decidedList snapshots a record's decided log for shipping alongside
// a committed base (Phase1b, Phase2a, anti-entropy). Contents travel
// only where a merging peer can use them — commutative accepts — so
// the lists stay light: rejects have no effect to graft and physical
// updates cannot be re-applied onto a fresher base (see adoptBase).
func decidedList(l *decidedLog) []DecidedOption {
	out := make([]DecidedOption, 0, len(l.order))
	for _, id := range l.order {
		e := l.byID[id]
		d := DecidedOption{ID: id, Decision: e.Decision}
		if e.HasOpt && e.Decision == DecAccept && e.Opt.Update.Kind == record.KindCommutative {
			d.Opt, d.HasOpt = e.Opt, true
		}
		out = append(out, d)
	}
	return out
}

// applyUpdate makes a committed update visible in the store.
func (n *StorageNode) applyUpdate(up record.Update) {
	if up.Kind == record.KindReadCheck {
		return // validation only
	}
	cur, ver, _ := n.store.Get(up.Key)
	switch up.Kind {
	case record.KindPhysical:
		newVer := up.ReadVersion + 1
		if newVer <= ver {
			return // already superseded by a later committed write
		}
		_ = n.store.Put(up.Key, up.NewValue, newVer)
	case record.KindCommutative:
		// Merged (gateway-coalesced) updates advance the version by the
		// number of client updates they carry, keeping per-client-update
		// version accounting exact.
		_ = n.store.Put(up.Key, up.Apply(cur), ver+up.Span())
	}
}

// pruneVote drops an unresolved vote once its option is settled.
func (n *StorageNode) pruneVote(r *recState, id OptionID) {
	delete(r.votedAt, id)
	for i, v := range r.votes {
		if v.Opt.ID() == id {
			r.votes = append(r.votes[:i], r.votes[i+1:]...)
			return
		}
	}
}

// onPhase1a promises a classic ballot and reports state (§3.1.1).
func (n *StorageNode) onPhase1a(from transport.NodeID, m MsgPhase1a) {
	r := n.rs(m.Key)
	if r.promised.Less(m.Ballot) {
		r.promised = m.Ballot
	}
	val, ver, ok := n.store.Get(m.Key)
	decided := decidedList(r.decided)
	n.nPhase1++
	n.net.Send(n.id, from, MsgPhase1b{
		Key:     m.Key,
		Ballot:  r.promised, // echoes m.Ballot, or a higher promise (nack)
		Bal:     r.accepted,
		Votes:   append([]VotedOption(nil), r.votes...),
		Version: ver,
		Value:   val,
		Exists:  ok && !val.Tombstone,
		Decided: decided,
	})
}

// onPhase2a adopts the leader's cstruct (classic Phase2b, algorithm 3
// lines 72-77). Decisions were fixed by the leader, so all replicas
// store identical votes. A fresher committed base piggybacked by the
// leader catches up lagging replicas.
func (n *StorageNode) onPhase2a(from transport.NodeID, m MsgPhase2a) {
	r := n.rs(m.Key)
	if m.Ballot.Less(r.promised) {
		n.net.Send(n.id, from, MsgPhase2b{
			Key: m.Key, Ballot: m.Ballot, Seq: m.Seq, OK: false, Promised: r.promised,
		})
		return
	}
	if m.Ballot.Cmp(r.accepted) == 0 && m.Seq <= r.p2aSeq {
		// Duplicated or reordered proposal of the current ballot: this
		// snapshot (or a newer one) was already adopted. Re-ack without
		// touching state — re-adopting an older cstruct would silently
		// drop votes the leader has since added.
		n.net.Send(n.id, from, MsgPhase2b{Key: m.Key, Ballot: m.Ballot, Seq: m.Seq, OK: true})
		return
	}
	if m.Ballot.Cmp(r.accepted) != 0 {
		r.p2aSeq = 0 // new ballot: its proposal sequence starts over
	}
	r.promised = m.Ballot
	r.accepted = m.Ballot
	r.p2aSeq = m.Seq
	if m.HasBase {
		// A fresher committed base piggybacked by the leader catches up
		// (and merges with) lagging replicas.
		n.adoptBase(m.Key, m.BaseValue, m.BaseVersion, m.BaseDecided, "phase2a")
	}
	now := n.net.Now()
	r.votes = r.votes[:0]
	prevVotedAt := r.votedAt
	r.votedAt = make(map[OptionID]time.Time, len(m.CStruct))
	for _, v := range m.CStruct {
		if _, ok := r.decided.get(v.Opt.ID()); ok {
			continue // already settled locally (e.g. visibility raced ahead)
		}
		r.votes = append(r.votes, v)
		// votedAt measures how long the option has been unresolved, so
		// a re-adopted vote keeps its original timestamp. Resetting it
		// here would let a hot record's steady classic traffic refresh
		// the clock faster than PendingTimeout elapses, permanently
		// disarming the dangling-option sweep for an option whose
		// coordinator has already moved on — its visibility would
		// never be recovered.
		if at, ok := prevVotedAt[v.Opt.ID()]; ok {
			r.votedAt[v.Opt.ID()] = at
		} else {
			r.votedAt[v.Opt.ID()] = now
		}
	}
	n.nPhase2++
	n.net.Send(n.id, from, MsgPhase2b{Key: m.Key, Ballot: m.Ballot, Seq: m.Seq, OK: true})
}

// onEnableFast re-opens the record for master-bypassing proposals.
func (n *StorageNode) onEnableFast(m MsgEnableFast) {
	r := n.rs(m.Key)
	if r.promised.Less(m.Ballot) {
		r.promised = m.Ballot
		r.accepted = m.Ballot
		n.nEnableFast++
	}
}

// fnvID hashes a node id into an anti-entropy RNG seed so each node
// walks a different peer order deterministically.
func fnvID(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
