// Package check validates consistency invariants over recorded
// transaction histories: wrap every client of a run in a History
// recorder, then Validate the final database state against what the
// committed operations permit. It machine-checks the guarantees
// DESIGN.md §5 claims — no lost updates, atomic durability,
// constraint safety, conservation of commutative deltas — and is used
// by integration and property tests.
package check

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mdcc/internal/mtx"
	"mdcc/internal/record"
)

// Op is one recorded transaction.
type Op struct {
	Seq       int64
	Client    int
	Updates   []record.Update
	Committed bool
	// Unknown marks an op whose outcome was never acknowledged — the
	// client-side process (e.g. a gateway) died with the ack in flight.
	// The protocol still settles the transaction (the dangling-option
	// sweep forces a decision), so the state may or may not contain
	// its effects; Validate bounds the invariants accordingly.
	Unknown bool
}

// History collects operations from all wrapped clients of a run.
// Safe for concurrent use.
type History struct {
	mu    sync.Mutex
	ops   []Op
	reads []ReadObs
	seq   int64
}

// New returns an empty history.
func New() *History { return &History{} }

// Ops returns a copy of the recorded operations.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Client wraps a client so its commits are recorded.
func (h *History) Client(id int, inner mtx.Client) mtx.Client {
	return &recordingClient{h: h, id: id, inner: inner}
}

type recordingClient struct {
	h     *History
	id    int
	inner mtx.Client
}

func (rc *recordingClient) Read(key record.Key, cb func(record.Value, record.Version, bool)) {
	rc.inner.Read(key, cb)
}

func (rc *recordingClient) Commit(updates []record.Update, done func(bool)) {
	ups := append([]record.Update(nil), updates...)
	rc.inner.Commit(updates, func(ok bool) {
		rc.h.Record(rc.id, ups, ok)
		done(ok)
	})
}

// Record logs one acknowledged transaction outcome directly (for
// harness clients that cannot route through a recordingClient — e.g.
// gateway clients that must divert unknown-outcome errors to Orphan).
func (h *History) Record(client int, updates []record.Update, committed bool) {
	h.mu.Lock()
	h.seq++
	h.ops = append(h.ops, Op{
		Seq: h.seq, Client: client,
		Updates:   append([]record.Update(nil), updates...),
		Committed: committed,
	})
	h.mu.Unlock()
}

func (rc *recordingClient) SupportsCommutative() bool { return mtx.Commutative(rc.inner) }

// Orphan records an op whose outcome will never be acknowledged (the
// submitting tier died mid-flight). Harnesses call this instead of
// letting the op vanish from the history, which would make exact
// version/conservation accounting flag the op's possible effects as
// corruption.
func (h *History) Orphan(client int, updates []record.Update) {
	h.mu.Lock()
	h.seq++
	h.ops = append(h.ops, Op{
		Seq: h.seq, Client: client,
		Updates: append([]record.Update(nil), updates...),
		Unknown: true,
	})
	h.mu.Unlock()
}

// ReadObs is one observed read in a session-guaranteed client's
// history (recorded only for clients that request floored reads —
// plain read-committed reads have no ordering obligation to check).
type ReadObs struct {
	Seq     int64
	Client  int
	Key     record.Key
	Version record.Version
	Exists  bool
}

// ObserveRead records a successful floored read. The shared sequence
// counter interleaves reads with the client's commits, so per-client
// program order is recoverable for the session-guarantee checks.
func (h *History) ObserveRead(client int, key record.Key, ver record.Version, exists bool) {
	h.mu.Lock()
	h.seq++
	h.reads = append(h.reads, ReadObs{Seq: h.seq, Client: client, Key: key, Version: ver, Exists: exists})
	h.mu.Unlock()
}

// Reads returns a copy of the recorded read observations.
func (h *History) Reads() []ReadObs {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ReadObs(nil), h.reads...)
}

// ValidateSessionReads checks the §4.2 session guarantees over the
// recorded reads, per client in program order (clients are closed
// loops, so the shared sequence numbers order each client's ops):
//
//   - Monotonic reads: a client's successive reads of a key never
//     observe a version lower than one it already observed.
//   - Read-your-writes: after a client's acknowledged committed
//     physical write of a key at read-version v (producing v+1), its
//     later reads of that key observe version >= v+1.
//
// Unacknowledged (unknown-outcome) writes impose no floor — the
// client never learned they committed — and commutative deltas
// produce no client-known version, so neither raises expectations.
// These guarantees are exactly what the gateway read tier must
// preserve through feed lag, gaps, and gateway crashes: a violation
// means a stale materialized value was served past a session floor.
func (h *History) ValidateSessionReads() []error {
	type ev struct {
		seq  int64
		read bool
		ver  record.Version // read: observed; write: floor (vread+1)
		key  record.Key
	}
	byClient := make(map[int][]ev)
	for _, op := range h.Ops() {
		if !op.Committed || op.Unknown {
			continue
		}
		for _, up := range op.Updates {
			if up.Kind == record.KindPhysical {
				byClient[op.Client] = append(byClient[op.Client],
					ev{seq: op.Seq, key: up.Key, ver: up.ReadVersion + 1})
			}
		}
	}
	for _, r := range h.Reads() {
		if !r.Exists {
			continue // failed/absent reads carry no version to order
		}
		byClient[r.Client] = append(byClient[r.Client],
			ev{seq: r.Seq, read: true, key: r.Key, ver: r.Version})
	}
	clients := make([]int, 0, len(byClient))
	for c := range byClient {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	var errs []error
	for _, c := range clients {
		evs := byClient[c]
		sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
		floor := make(map[record.Key]record.Version)
		for _, e := range evs {
			if e.read {
				if e.ver < floor[e.key] {
					errs = append(errs, fmt.Errorf(
						"check: client %d read %s at version %d after observing/writing version %d (session guarantee violated)",
						c, e.key, e.ver, floor[e.key]))
				}
			}
			if e.ver > floor[e.key] {
				floor[e.key] = e.ver
			}
		}
	}
	return errs
}

// Unknowns counts recorded unknown-outcome ops.
func (h *History) Unknowns() int {
	n := 0
	for _, op := range h.Ops() {
		if op.Unknown {
			n++
		}
	}
	return n
}

// FinalState reads the authoritative end-of-run state of a key
// (typically from a storage replica after quiescence).
type FinalState func(key record.Key) (val record.Value, ver record.Version, exists bool)

// Validate checks the history against the final state. initial maps
// preloaded keys to their starting values (version 1); keys created
// during the run start absent. Returned errors describe every
// violated invariant (empty slice = clean).
//
// Checked invariants:
//
//  1. No lost updates: committed physical writes to a key have
//     pairwise distinct read versions (two commits with the same
//     vread would mean one overwrote the other blindly).
//  2. Version accounting: the final version of a key equals its
//     initial version plus the number of committed non-read-check
//     updates to it.
//  3. Conservation: for keys touched only by commutative updates,
//     final = initial + Σ committed deltas.
//  4. Constraint safety: the final value satisfies every declared
//     constraint.
//
// Unknown-outcome ops (see Op.Unknown) relax the exact checks to
// bounds: the final version must fall in [committed, committed +
// unknown writes] and a commutative attribute in [Σ committed +
// Σ unknown decrements, Σ committed + Σ unknown increments] — any
// state outside those envelopes is still corruption no crash can
// explain.
func (h *History) Validate(initial map[record.Key]record.Value, final FinalState, cons []record.Constraint) []error {
	ops := h.Ops()
	var errs []error

	type keyStats struct {
		physVreads    map[record.Version]int
		committed     int // committed writes (physical+commutative)
		deltas        map[string]int64
		sawPhysical   bool
		sawComm       bool
		lastTombstone bool

		// Unknown-outcome bounds.
		unknownWrites int // unknown non-read-check updates touching the key
		unknownPhys   bool
		unknownNeg    map[string]int64 // <= 0, worst-case unapplied/applied split
		unknownPos    map[string]int64 // >= 0
	}
	stats := make(map[record.Key]*keyStats)
	ks := func(k record.Key) *keyStats {
		s, ok := stats[k]
		if !ok {
			s = &keyStats{
				physVreads: make(map[record.Version]int),
				deltas:     make(map[string]int64),
				unknownNeg: make(map[string]int64),
				unknownPos: make(map[string]int64),
			}
			stats[k] = s
		}
		return s
	}
	for _, op := range ops {
		if op.Unknown {
			for _, up := range op.Updates {
				s := ks(up.Key)
				switch up.Kind {
				case record.KindPhysical:
					s.unknownWrites++
					s.unknownPhys = true
				case record.KindCommutative:
					s.unknownWrites++
					for attr, d := range up.Deltas {
						if d < 0 {
							s.unknownNeg[attr] += d
						} else {
							s.unknownPos[attr] += d
						}
					}
				}
			}
			continue
		}
		if !op.Committed {
			continue
		}
		for _, up := range op.Updates {
			s := ks(up.Key)
			switch up.Kind {
			case record.KindPhysical:
				s.physVreads[up.ReadVersion]++
				s.committed++
				s.sawPhysical = true
				s.lastTombstone = up.NewValue.Tombstone
			case record.KindCommutative:
				s.committed++
				s.sawComm = true
				for attr, d := range up.Deltas {
					s.deltas[attr] += d
				}
			case record.KindReadCheck:
				// validation only — no state change
			}
		}
	}

	for key, s := range stats {
		// 1. No lost updates.
		for vread, n := range s.physVreads {
			if n > 1 {
				errs = append(errs, fmt.Errorf(
					"check: %s: %d committed physical writes share read version %d (lost update)", key, n, vread))
			}
		}
		val, ver, exists := final(key)
		init, preloaded := initial[key]
		initVer := record.Version(0)
		if preloaded {
			initVer = 1
		}
		// 2. Version accounting: exact, or bounded when unknown-outcome
		// ops touched the key (each unknown write may or may not have
		// committed).
		lo := initVer + record.Version(s.committed)
		hi := lo + record.Version(s.unknownWrites)
		if ver < lo || ver > hi {
			if lo == hi {
				errs = append(errs, fmt.Errorf(
					"check: %s: final version %d, want %d (initial %d + %d committed writes)",
					key, ver, lo, initVer, s.committed))
			} else {
				errs = append(errs, fmt.Errorf(
					"check: %s: final version %d outside [%d, %d] (initial %d + %d committed + up to %d unknown writes)",
					key, ver, lo, hi, initVer, s.committed, s.unknownWrites))
			}
		}
		// 3. Conservation for purely commutative keys (unknown physical
		// ops void the interval — the key class is no longer delta-only).
		if s.sawComm && !s.sawPhysical && !s.unknownPhys {
			if !exists && preloaded {
				errs = append(errs, fmt.Errorf("check: %s: commutative-only key vanished", key))
			} else {
				for attr, delta := range s.deltas {
					base := init.Attr(attr) + delta
					got := val.Attr(attr)
					aLo := base + s.unknownNeg[attr]
					aHi := base + s.unknownPos[attr]
					if got < aLo || got > aHi {
						if aLo == aHi {
							errs = append(errs, fmt.Errorf(
								"check: %s.%s: final %d, want %d (initial %d + Σdeltas %d)",
								key, attr, got, base, init.Attr(attr), delta))
						} else {
							errs = append(errs, fmt.Errorf(
								"check: %s.%s: final %d outside [%d, %d] (initial %d + Σcommitted %d ± unknown deltas)",
								key, attr, got, aLo, aHi, init.Attr(attr), delta))
						}
					}
				}
			}
		}
		// 4. Constraints.
		if exists {
			for _, con := range cons {
				if x, ok := val.Attrs[con.Attr]; ok && !con.Satisfied(x) {
					errs = append(errs, fmt.Errorf(
						"check: %s: constraint %s violated (value %d)", key, con, x))
				}
			}
		}
		// Tombstone bookkeeping consistency (moot when an unknown
		// physical op may have rewritten the key after the delete).
		if s.sawPhysical && s.lastTombstone && exists && !s.sawComm && !s.unknownPhys {
			errs = append(errs, fmt.Errorf("check: %s: last committed write was a delete but the record exists", key))
		}
	}
	return errs
}

// ReplicaState is one replica's post-quiesce view of a key, used by
// the exact-convergence invariant. Lineage is the replica's canonical
// lineage fingerprint for the key (core.LineageSummary.String —
// passed as an opaque string so this package stays protocol-agnostic).
type ReplicaState struct {
	Replica string
	Lineage string
	Value   record.Value
	Version record.Version
	Exists  bool
}

// ValidateConvergence checks the exact-convergence invariant for one
// key: after the network heals and the run quiesces, every replica
// must hold an identical lineage summary AND identical committed
// state. This is strictly stronger than final-value equality — two
// forked branches can coincidentally sum to equal values, and a
// replica that silently lost a forked apply while another gained an
// offsetting one passes value checks but cannot pass summary
// equality. Returned errors name the diverging replicas.
func ValidateConvergence(key record.Key, states []ReplicaState) []error {
	if len(states) < 2 {
		return nil
	}
	var errs []error
	ref := states[0]
	for _, s := range states[1:] {
		if s.Lineage != ref.Lineage {
			errs = append(errs, fmt.Errorf(
				"check: %s: lineage divergence after quiesce: %s=%s vs %s=%s",
				key, ref.Replica, ref.Lineage, s.Replica, s.Lineage))
			continue
		}
		if s.Version != ref.Version || s.Exists != ref.Exists || !s.Value.Equal(ref.Value) {
			errs = append(errs, fmt.Errorf(
				"check: %s: equal lineages but diverged state after quiesce: %s=%s v%d(exists=%v) vs %s=%s v%d(exists=%v)",
				key, ref.Replica, ref.Value, ref.Version, ref.Exists,
				s.Replica, s.Value, s.Version, s.Exists))
		}
	}
	return errs
}

// Summary returns commit/abort counts for reporting.
func (h *History) Summary() (commits, aborts int) {
	for _, op := range h.Ops() {
		switch {
		case op.Unknown:
			// neither: outcome unacknowledged (see Unknowns)
		case op.Committed:
			commits++
		default:
			aborts++
		}
	}
	return commits, aborts
}

// KeysMentioned returns the subset of known keys that appear verbatim
// in a violation message, longest match first. Violation strings embed
// the keys they are about ("check: key stock/03 ..."), so this is how
// the flight recorder turns a failed invariant into candidate
// transaction timelines without the checker having to grow a
// structured error type.
func KeysMentioned(msg string, known []record.Key) []record.Key {
	var out []record.Key
	for _, k := range known {
		if k != "" && strings.Contains(msg, string(k)) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}
